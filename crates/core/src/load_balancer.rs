//! The Load Balancer service.
//!
//! The Load Balancer "provides the Client Library with references to nodes
//! that can answer client requests" (paper §V). The paper's prototype uses a
//! random contact node and §VII identifies smarter, cache-based policies as
//! an optimisation path; both are implemented here so the `lb_ablation`
//! experiment can quantify the difference.

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::Rng;

use dataflasks_types::{Key, NodeId, SliceId, SlicePartition};

/// Contact-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBalancerPolicy {
    /// Pick a uniformly random contact node (the paper's prototype).
    Random,
    /// Prefer a node known to belong to the slice responsible for the
    /// requested key, learned from earlier replies; fall back to random when
    /// the slice has no cached member yet (paper §VII optimisation).
    SliceAware,
}

/// The Load Balancer: hands the client library a contact node per operation.
///
/// # Example
///
/// ```
/// use dataflasks_core::{LoadBalancer, LoadBalancerPolicy};
/// use dataflasks_types::{NodeId, SlicePartition};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let contacts = vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)];
/// let mut lb = LoadBalancer::new(LoadBalancerPolicy::Random, contacts, SlicePartition::new(10));
/// assert!(lb.pick(None, &mut rng).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    policy: LoadBalancerPolicy,
    contacts: Vec<NodeId>,
    partition: SlicePartition,
    slice_cache: HashMap<SliceId, Vec<NodeId>>,
    cache_per_slice: usize,
    cache_hits: u64,
    cache_misses: u64,
}

impl LoadBalancer {
    /// Creates a load balancer over the given contact nodes.
    #[must_use]
    pub fn new(
        policy: LoadBalancerPolicy,
        contacts: Vec<NodeId>,
        partition: SlicePartition,
    ) -> Self {
        Self {
            policy,
            contacts,
            partition,
            slice_cache: HashMap::new(),
            cache_per_slice: 8,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> LoadBalancerPolicy {
        self.policy
    }

    /// Number of contact nodes currently known.
    #[must_use]
    pub fn contact_count(&self) -> usize {
        self.contacts.len()
    }

    /// How often a slice-aware pick was served from the cache.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// How often a slice-aware pick fell back to a random contact.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Replaces the set of contact nodes (e.g. refreshed from the Peer
    /// Sampling Service).
    pub fn set_contacts(&mut self, contacts: Vec<NodeId>) {
        self.contacts = contacts;
    }

    /// Updates the key-space partition (needed when the slice count is
    /// reconfigured); the slice cache is invalidated because slice indices
    /// change meaning.
    pub fn set_partition(&mut self, partition: SlicePartition) {
        if partition != self.partition {
            self.partition = partition;
            self.slice_cache.clear();
        }
    }

    /// Picks a contact node for an operation on `key` (or `None` for
    /// key-agnostic traffic). Returns `None` only when no contact is known.
    pub fn pick<R: Rng>(&mut self, key: Option<Key>, rng: &mut R) -> Option<NodeId> {
        if self.contacts.is_empty() {
            return None;
        }
        if self.policy == LoadBalancerPolicy::SliceAware {
            if let Some(key) = key {
                let slice = self.partition.slice_of(key);
                if let Some(candidates) = self.slice_cache.get(&slice) {
                    if let Some(&node) = candidates.choose(rng) {
                        self.cache_hits += 1;
                        return Some(node);
                    }
                }
                self.cache_misses += 1;
            }
        }
        self.contacts.choose(rng).copied()
    }

    /// Records that `node` answered from `slice`; slice-aware picks will
    /// prefer it for keys of that slice.
    pub fn learn(&mut self, node: NodeId, slice: SliceId) {
        let entry = self.slice_cache.entry(slice).or_default();
        if !entry.contains(&node) {
            entry.push(node);
            if entry.len() > self.cache_per_slice {
                entry.remove(0);
            }
        }
    }

    /// Forgets `node` everywhere (suspected dead).
    pub fn forget(&mut self, node: NodeId) {
        self.contacts.retain(|&c| c != node);
        for members in self.slice_cache.values_mut() {
            members.retain(|&c| c != node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn contacts(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn empty_contact_list_yields_none() {
        let mut lb = LoadBalancer::new(LoadBalancerPolicy::Random, vec![], SlicePartition::new(4));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(lb.pick(None, &mut rng), None);
        assert_eq!(lb.contact_count(), 0);
    }

    #[test]
    fn random_policy_spreads_over_contacts() {
        let mut lb = LoadBalancer::new(
            LoadBalancerPolicy::Random,
            contacts(10),
            SlicePartition::new(4),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(lb.pick(None, &mut rng).unwrap());
        }
        assert!(seen.len() >= 8, "random picks should cover most contacts");
    }

    #[test]
    fn slice_aware_policy_prefers_learned_members() {
        let partition = SlicePartition::new(4);
        let mut lb = LoadBalancer::new(LoadBalancerPolicy::SliceAware, contacts(20), partition);
        let mut rng = StdRng::seed_from_u64(2);
        let key = Key::from_user_key("hot");
        let slice = partition.slice_of(key);
        // Before learning: random fallback (cache miss).
        let _ = lb.pick(Some(key), &mut rng);
        assert_eq!(lb.cache_misses(), 1);
        lb.learn(NodeId::new(3), slice);
        for _ in 0..10 {
            assert_eq!(lb.pick(Some(key), &mut rng), Some(NodeId::new(3)));
        }
        assert_eq!(lb.cache_hits(), 10);
    }

    #[test]
    fn learning_is_bounded_per_slice_and_deduplicated() {
        let partition = SlicePartition::new(2);
        let mut lb = LoadBalancer::new(LoadBalancerPolicy::SliceAware, contacts(64), partition);
        for i in 0..32u64 {
            lb.learn(NodeId::new(i), SliceId::new(0));
            lb.learn(NodeId::new(i), SliceId::new(0));
        }
        let mut rng = StdRng::seed_from_u64(3);
        // Every cached pick must come from the last 8 learned nodes.
        let key = partition.range_start(SliceId::new(0));
        for _ in 0..50 {
            let picked = lb.pick(Some(key), &mut rng).unwrap();
            assert!(picked.as_u64() >= 24, "evicted entry {picked} returned");
        }
    }

    #[test]
    fn forget_removes_a_node_everywhere() {
        let partition = SlicePartition::new(2);
        let mut lb = LoadBalancer::new(LoadBalancerPolicy::SliceAware, contacts(3), partition);
        lb.learn(NodeId::new(1), SliceId::new(0));
        lb.forget(NodeId::new(1));
        assert_eq!(lb.contact_count(), 2);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            assert_ne!(lb.pick(None, &mut rng), Some(NodeId::new(1)));
        }
    }

    #[test]
    fn repartitioning_invalidates_the_cache() {
        let partition = SlicePartition::new(2);
        let mut lb = LoadBalancer::new(LoadBalancerPolicy::SliceAware, contacts(10), partition);
        lb.learn(NodeId::new(1), SliceId::new(0));
        lb.set_partition(SlicePartition::new(8));
        let mut rng = StdRng::seed_from_u64(5);
        let key = Key::from_raw(0);
        let _ = lb.pick(Some(key), &mut rng);
        // Cache was cleared, so this pick is a miss even for slice 0 keys.
        assert_eq!(lb.cache_hits(), 0);
        assert!(lb.cache_misses() >= 1);
        // Same partition again keeps the cache.
        lb.learn(NodeId::new(2), SliceId::new(0));
        lb.set_partition(SlicePartition::new(8));
        let _ = lb.pick(Some(Key::from_raw(0)), &mut rng);
        assert!(lb.cache_hits() >= 1);
    }

    #[test]
    fn set_contacts_replaces_the_pool() {
        let mut lb = LoadBalancer::new(
            LoadBalancerPolicy::Random,
            contacts(2),
            SlicePartition::new(2),
        );
        lb.set_contacts(vec![NodeId::new(9)]);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(lb.pick(None, &mut rng), Some(NodeId::new(9)));
        assert_eq!(lb.contact_count(), 1);
        assert_eq!(lb.policy(), LoadBalancerPolicy::Random);
    }
}
