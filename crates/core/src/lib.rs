//! DataFlasks: an epidemic dependable key-value substrate.
//!
//! This crate implements the paper's primary contribution — the DataFlasks
//! node and its client library — on top of the substrates provided by the
//! sibling crates (`dataflasks-membership`, `dataflasks-slicing`,
//! `dataflasks-store`):
//!
//! * [`DataFlasksNode`] — the node state machine bundling the Peer Sampling
//!   Service, the Slice Manager, the request Handler, the Data Store and the
//!   anti-entropy repair extension (paper §IV and §V),
//! * [`ClientLibrary`] and [`LoadBalancer`] — the client-side components
//!   (paper §V), including the slice-aware contact cache the paper's §VII
//!   identifies as an optimisation path,
//! * [`Effects`], [`EffectBuffer`], [`NodeHost`], [`Environment`] — the
//!   sans-io environment layer: node handlers write their effects into a
//!   reusable sink, and every environment (the discrete-event simulator of
//!   `dataflasks-sim`, the threaded runtime of `dataflasks-runtime`, future
//!   async or sharded backends) drives nodes through the same interface,
//! * [`Message`], [`Output`], [`TimerKind`] — the protocol surface those
//!   environments route,
//! * [`NodeStats`] — the per-node message accounting the paper's evaluation
//!   (Figures 3 and 4) is based on.
//!
//! # Example
//!
//! ```
//! use dataflasks_core::{ClientRequest, DataFlasksNode, EffectBuffer, Output};
//! use dataflasks_membership::NodeDescriptor;
//! use dataflasks_store::{DataStore, MemoryStore};
//! use dataflasks_types::{Key, NodeConfig, NodeId, NodeProfile, RequestId, SimTime, Value, Version};
//!
//! // A single-slice, two-node toy system.
//! let config = NodeConfig::for_system_size(2, 1);
//! let mut node = DataFlasksNode::new(
//!     NodeId::new(0),
//!     config,
//!     NodeProfile::default(),
//!     MemoryStore::unbounded(),
//!     1,
//! );
//! node.bootstrap([NodeDescriptor::new(NodeId::new(1), NodeProfile::default())]);
//!
//! // With a single slice the node is responsible for every key, so a client
//! // put is stored locally and acknowledged immediately. The effects land in
//! // the caller-owned (reusable) buffer.
//! let mut fx = EffectBuffer::new();
//! node.handle_client_request(
//!     7,
//!     ClientRequest::Put {
//!         id: RequestId::new(7, 0),
//!         key: Key::from_user_key("greeting"),
//!         version: Version::new(1),
//!         value: Value::from_bytes(b"hello"),
//!     },
//!     SimTime::ZERO,
//!     &mut fx,
//! );
//! assert!(fx.as_slice().iter().any(|o| matches!(o, Output::Reply { .. })));
//! assert_eq!(node.store().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod dedup;
pub mod env;
pub mod fault;
pub mod gateway;
pub mod load_balancer;
pub mod message;
pub mod node;
pub mod sched;
pub mod stats;
pub mod wheel;
pub mod wire;

pub use client::{ClientLibrary, ClientStats, CompletedOperation, IssuedRequest, OperationOutcome};
pub use env::{
    BootstrapRounds, ClusterSpec, DefaultStore, EffectBuffer, Effects, Environment, NodeHost,
};
pub use fault::{FaultPlan, InjectedCounters, LinkVerdict};
pub use gateway::{
    ClientGateway, Completion, GatewayError, PipelinedClient, Ticket, TicketKind, TicketOutcome,
};
pub use load_balancer::{LoadBalancer, LoadBalancerPolicy};
pub use message::{
    ClientId, ClientReply, ClientRequest, DisseminationPhase, GetRequest, Message, Output,
    PutRequest, ReplyBody, TimerKind,
};
pub use node::DataFlasksNode;
pub use sched::{Inbox, Poll, PushOutcome, RecvOutcome, Scheduler, SchedulerConfig, StealPolicy};
pub use stats::{MessageKind, NodeStats};
pub use wheel::{DueTimer, TimerWheel, WheelInstant};
pub use wire::{decode_frame, encode_frame, encode_output, DecodedFrame, WireError};
