//! Bounded duplicate-suppression cache for request identifiers.

use std::collections::VecDeque;

use dataflasks_types::{FastHashSet, RequestId};

/// A bounded first-in-first-out set of request identifiers.
///
/// Epidemic dissemination delivers the same request to a node through several
/// paths; the node forwards (and applies) it only the first time. The cache
/// is bounded so that memory stays constant regardless of how long the node
/// runs: once full, remembering a new request forgets the oldest one, which
/// is safe because by then the corresponding dissemination has long finished.
///
/// # Example
///
/// ```
/// use dataflasks_core::dedup::DedupCache;
/// use dataflasks_types::RequestId;
///
/// let mut cache = DedupCache::new(2);
/// assert!(cache.first_sighting(RequestId::new(1, 1)));
/// assert!(!cache.first_sighting(RequestId::new(1, 1)));
/// ```
#[derive(Debug, Clone)]
pub struct DedupCache {
    capacity: usize,
    seen: FastHashSet<RequestId>,
    order: VecDeque<RequestId>,
}

impl DedupCache {
    /// Creates a cache remembering at most `capacity` request identifiers.
    ///
    /// Storage grows with actual use rather than being reserved up front:
    /// a simulated cluster hosts one cache per node, and pre-sizing every
    /// one of them for the worst case dominated large-scale memory.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "dedup cache needs a non-zero capacity");
        Self {
            capacity,
            seen: FastHashSet::default(),
            order: VecDeque::new(),
        }
    }

    /// Records `id` and returns `true` if it had not been seen before.
    pub fn first_sighting(&mut self, id: RequestId) -> bool {
        // One hashed operation on the hot (duplicate) path: the insert's
        // return value doubles as the membership test.
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        if self.order.len() > self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.seen.remove(&evicted);
            }
        }
        true
    }

    /// Returns `true` if `id` is currently remembered.
    #[must_use]
    pub fn contains(&self, id: RequestId) -> bool {
        self.seen.contains(&id)
    }

    /// Number of identifiers currently remembered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if nothing is remembered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_is_rejected() {
        let _ = DedupCache::new(0);
    }

    #[test]
    fn first_sighting_is_true_exactly_once() {
        let mut cache = DedupCache::new(8);
        let id = RequestId::new(1, 1);
        assert!(cache.first_sighting(id));
        assert!(!cache.first_sighting(id));
        assert!(!cache.first_sighting(id));
        assert!(cache.contains(id));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut cache = DedupCache::new(3);
        for seq in 0..3 {
            assert!(cache.first_sighting(RequestId::new(0, seq)));
        }
        assert!(cache.first_sighting(RequestId::new(0, 3)));
        assert_eq!(cache.len(), 3);
        assert!(!cache.contains(RequestId::new(0, 0)), "oldest evicted");
        assert!(cache.contains(RequestId::new(0, 3)));
        // The evicted id is treated as new again (harmless late duplicate).
        assert!(cache.first_sighting(RequestId::new(0, 0)));
    }

    #[test]
    fn is_empty_reflects_contents() {
        let mut cache = DedupCache::new(2);
        assert!(cache.is_empty());
        cache.first_sighting(RequestId::new(1, 1));
        assert!(!cache.is_empty());
    }
}
