//! The DataFlasks node state machine.
//!
//! A [`DataFlasksNode`] bundles the four services of the paper's architecture
//! (Figure 2): the Peer Sampling Service, the Slice Manager, the request
//! Handler and the Data Store, plus the anti-entropy repair extension. It is
//! written sans-io: every input (a protocol message, a client request or a
//! periodic timer) is handled by a method that writes the resulting effects —
//! sends, client replies, timer re-arms — into an [`Effects`] sink, and the
//! environment — the discrete-event simulator or the threaded runtime — owns
//! the transport and the clock. With a reusable
//! [`EffectBuffer`](crate::EffectBuffer) and the node's internal scratch
//! buffers, steady-state dispatch performs no per-message allocation for the
//! effect pipeline, and epidemic fan-out shares one reference-counted request
//! across all peers instead of deep-copying it.

use std::mem;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dataflasks_membership::{CyclonProtocol, NodeDescriptor, PeerSampling, SliceView};
use dataflasks_slicing::{OrderedSlicer, Slicer};
use dataflasks_store::{DataStore, PutOutcome, StoreDigest};
use dataflasks_types::{
    Key, KeyRange, NodeConfig, NodeId, NodeProfile, RequestId, SimTime, SliceId, SlicePartition,
    StoredObject,
};

use crate::dedup::DedupCache;
use crate::env::Effects;
use crate::message::{
    ClientId, ClientReply, ClientRequest, DisseminationPhase, GetRequest, Message, PutRequest,
    ReplyBody, TimerKind,
};
use crate::stats::{MessageKind, NodeStats};

/// The DataFlasks node: slice manager, request handler, peer sampling and
/// data store, driven entirely by explicit inputs.
///
/// # Example
///
/// ```
/// use dataflasks_core::{DataFlasksNode, EffectBuffer, Output, TimerKind};
/// use dataflasks_membership::NodeDescriptor;
/// use dataflasks_store::MemoryStore;
/// use dataflasks_types::{NodeConfig, NodeId, NodeProfile, SimTime};
///
/// let config = NodeConfig::for_system_size(10, 2);
/// let mut node = DataFlasksNode::new(
///     NodeId::new(0),
///     config,
///     NodeProfile::default(),
///     MemoryStore::unbounded(),
///     42,
/// );
/// node.bootstrap([NodeDescriptor::new(NodeId::new(1), NodeProfile::default())]);
/// // A shuffle timer produces a shuffle message for the bootstrap contact
/// // (plus the timer's own re-arm).
/// let mut fx = EffectBuffer::new();
/// node.on_timer(TimerKind::PssShuffle, SimTime::ZERO, &mut fx);
/// assert!(fx.as_slice().iter().any(|o| matches!(o, Output::Send { .. })));
/// ```
#[derive(Debug)]
pub struct DataFlasksNode<S> {
    id: NodeId,
    config: NodeConfig,
    partition: SlicePartition,
    cyclon: CyclonProtocol,
    slicer: OrderedSlicer,
    slice_view: SliceView,
    store: S,
    dedup: DedupCache,
    stats: NodeStats,
    rng: StdRng,
    current_slice: Option<SliceId>,
    /// Incremental anti-entropy cursor: which key-range chunk (store shard)
    /// the next exchange covers. Rounds cycle over the chunks overlapping the
    /// node's slice range, so repeated rounds tile the whole replica.
    anti_entropy_cursor: u32,
    /// Adaptive chunk scheduling: the digest fingerprint of the last
    /// *in-sync* exchange per `(peer, chunk)`. A round whose chunk still
    /// carries the matching fingerprint is skipped (the entry is consumed, so
    /// at most every other round of a stable chunk is elided — bounding how
    /// long a silent divergence on the peer's side can hide behind a skip).
    ae_synced: std::collections::HashMap<(NodeId, KeyRange), u64>,
    /// Reusable fan-out target buffer (steady state: no allocation per
    /// dissemination step).
    peer_scratch: Vec<NodeId>,
    /// Reusable sample buffer for the global-phase target fill.
    sample_scratch: Vec<NodeId>,
    /// Reusable buffer for feeding view knowledge into slicer and slice view.
    descriptor_scratch: Vec<NodeDescriptor>,
}

impl<S: DataStore> DataFlasksNode<S> {
    /// Creates a node with the given configuration, locally measured profile
    /// and backing store. `seed` makes the node's randomised choices
    /// deterministic (each node should receive a distinct seed).
    #[must_use]
    pub fn new(id: NodeId, config: NodeConfig, profile: NodeProfile, store: S, seed: u64) -> Self {
        let partition = SlicePartition::new(config.slicing.slice_count);
        let cyclon = CyclonProtocol::with_profile(id, config.pss, profile);
        let slicer = OrderedSlicer::new(id, profile, config.slicing, partition);
        let slice_view = SliceView::new(id, config.pss.intra_view_size);
        let dedup = DedupCache::new(config.dissemination.dedup_cache_size);
        let rng = StdRng::seed_from_u64(seed ^ id.as_u64().wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut node = Self {
            id,
            config,
            partition,
            cyclon,
            slicer,
            slice_view,
            store,
            dedup,
            stats: NodeStats::new(),
            rng,
            current_slice: None,
            anti_entropy_cursor: 0,
            ae_synced: std::collections::HashMap::new(),
            peer_scratch: Vec::new(),
            sample_scratch: Vec::new(),
            descriptor_scratch: Vec::new(),
        };
        node.refresh_slice_assignment();
        node
    }

    /// The node's identity.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's configuration.
    #[must_use]
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The key-space partition the node currently uses.
    #[must_use]
    pub fn partition(&self) -> SlicePartition {
        self.partition
    }

    /// The slice the node currently belongs to.
    #[must_use]
    pub fn slice(&self) -> Option<SliceId> {
        self.current_slice
    }

    /// The node's locally measured profile.
    #[must_use]
    pub fn profile(&self) -> NodeProfile {
        self.slicer.profile()
    }

    /// Message and operation counters.
    #[must_use]
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Records one inbound wire frame this node's transport rejected before
    /// dispatch ([`NodeStats::wire_rejects`]). Byte transports call this when
    /// a peer's bytes fail to decode — the node state machine itself never
    /// sees the frame.
    pub fn record_wire_reject(&mut self) {
        self.stats.wire_rejects += 1;
    }

    /// Folds injected-fault accounting into this node's counters
    /// ([`NodeStats::frames_dropped_injected`] and friends). Backends call
    /// this after flushing a node's effects through a routing path that
    /// consulted a [`FaultPlan`](crate::fault::FaultPlan); the node state
    /// machine itself never observes the faults.
    pub fn record_injected_faults(&mut self, injected: &crate::fault::InjectedCounters) {
        self.stats.frames_dropped_injected += injected.frames_dropped;
        self.stats.frames_duplicated_injected += injected.frames_duplicated;
        self.stats.partition_refusals += injected.partition_refusals;
    }

    /// Read access to the backing data store.
    #[must_use]
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Write access to the backing data store (used by tests and recovery
    /// tooling; protocol traffic goes through the message handlers).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Number of peers in the global (Cyclon) view.
    #[must_use]
    pub fn view_len(&self) -> usize {
        self.cyclon.view().len()
    }

    /// Number of known peers of the node's own slice.
    #[must_use]
    pub fn slice_view_len(&self) -> usize {
        self.slice_view.len()
    }

    /// Returns `true` if this node's slice is responsible for `key`.
    #[must_use]
    pub fn is_responsible_for(&self, key: Key) -> bool {
        self.current_slice
            .is_some_and(|slice| self.partition.owns(slice, key))
    }

    /// Seeds the global view with bootstrap contacts.
    pub fn bootstrap<I>(&mut self, contacts: I)
    where
        I: IntoIterator<Item = NodeDescriptor>,
    {
        for contact in contacts {
            self.slicer.observe(contact.id(), contact.profile());
            self.slice_view.observe(contact);
            self.cyclon.view_mut().insert(contact);
        }
        self.refresh_slice_assignment();
    }

    /// Reconfigures the number of slices (dynamic replication management).
    /// The new partition takes effect immediately; objects now outside the
    /// node's range are kept until [`Self::prune_foreign_data`] is called or
    /// anti-entropy hands them over.
    pub fn set_slice_count(&mut self, slice_count: u32) {
        self.partition = SlicePartition::new(slice_count);
        self.slicer.set_partition(self.partition);
        self.config.slicing.slice_count = slice_count;
        self.refresh_slice_assignment();
    }

    /// Drops every stored object whose key is outside the node's current
    /// slice range, returning how many keys were removed.
    pub fn prune_foreign_data(&mut self) -> usize {
        match self.current_slice {
            Some(slice) => self.store.retain_slice(self.partition, slice),
            None => 0,
        }
    }

    // ------------------------------------------------------------------
    // Input handlers
    // ------------------------------------------------------------------

    /// Handles a protocol message from another node, writing the resulting
    /// effects into `fx`.
    pub fn handle_message(
        &mut self,
        from: NodeId,
        message: Message,
        now: SimTime,
        fx: &mut dyn Effects,
    ) {
        let _ = now;
        self.stats.record_received(message.kind());
        match message {
            Message::Shuffle(request) => {
                let response = self.cyclon.handle_request(from, request, &mut self.rng);
                self.absorb_membership_knowledge();
                self.send_to(fx, from, Message::ShuffleReply(response));
            }
            Message::ShuffleReply(response) => {
                self.cyclon.handle_response(response);
                self.absorb_membership_knowledge();
            }
            Message::Newscast(_) => {}
            Message::SliceGossip(exchange) => {
                let reply = self.slicer.handle_exchange(exchange, &mut self.rng);
                self.refresh_slice_assignment();
                self.send_to(fx, from, Message::SliceGossipReply(reply));
            }
            Message::SliceGossipReply(reply) => {
                self.slicer.handle_reply(reply);
                self.refresh_slice_assignment();
            }
            Message::Put(request) => self.handle_put(request, fx),
            Message::Get(request) => self.handle_get(request, fx),
            Message::AntiEntropyDigest { digest, range } => {
                self.handle_anti_entropy_digest(from, &digest, range, fx);
            }
            Message::AntiEntropyReply {
                objects,
                digest,
                range,
            } => {
                self.handle_anti_entropy_reply(from, &objects, &digest, range, fx);
            }
            Message::AntiEntropyPush { objects } => {
                self.apply_repair_objects(&objects);
            }
        }
    }

    /// Handles an operation submitted by a client library to this node (the
    /// contact node chosen by the load balancer), writing the resulting
    /// effects into `fx`.
    pub fn handle_client_request(
        &mut self,
        client: ClientId,
        request: ClientRequest,
        now: SimTime,
        fx: &mut dyn Effects,
    ) {
        let _ = now;
        self.dedup.first_sighting(request.id());
        match request {
            ClientRequest::Put {
                id,
                key,
                version,
                value,
            } => {
                let object = StoredObject::new(key, version, value);
                let request = PutRequest {
                    id,
                    client,
                    object,
                    phase: DisseminationPhase::Global,
                    ttl: self.global_ttl(),
                };
                self.handle_put_locally_and_forward(request, true, fx);
            }
            ClientRequest::Get { id, key, version } => {
                let request = GetRequest {
                    id,
                    client,
                    key,
                    version,
                    phase: DisseminationPhase::Global,
                    ttl: self.global_ttl(),
                };
                self.handle_get_locally_and_forward(request, true, fx);
            }
        }
    }

    /// Handles one periodic timer, writing the resulting effects into `fx`.
    ///
    /// The node re-arms the timer itself by emitting
    /// [`Effects::emit_timer`] with the period from its own configuration, so
    /// environments only seed the first round of each timer.
    pub fn on_timer(&mut self, timer: TimerKind, now: SimTime, fx: &mut dyn Effects) {
        let _ = now;
        match timer {
            TimerKind::PssShuffle => self.on_pss_timer(fx),
            TimerKind::SliceGossip => self.on_slice_gossip_timer(fx),
            TimerKind::AntiEntropy => self.on_anti_entropy_timer(fx),
        }
        fx.emit_timer(timer, timer.period(&self.config));
    }

    // ------------------------------------------------------------------
    // Periodic protocol rounds
    // ------------------------------------------------------------------

    fn on_pss_timer(&mut self, fx: &mut dyn Effects) {
        self.cyclon.set_slice(self.current_slice);
        self.slice_view
            .age_and_expire(self.config.pss.max_descriptor_age);
        if let Some((target, request)) = self.cyclon.initiate_shuffle(&mut self.rng) {
            self.absorb_membership_knowledge();
            self.send_to(fx, target, Message::Shuffle(request));
        }
    }

    fn on_slice_gossip_timer(&mut self, fx: &mut dyn Effects) {
        self.slicer.advance_round();
        self.refresh_slice_assignment();
        let Some(peer) = self.cyclon.view().random_peer(&mut self.rng) else {
            return;
        };
        let exchange = self.slicer.create_exchange(&mut self.rng);
        self.send_to(fx, peer, Message::SliceGossip(exchange));
    }

    fn on_anti_entropy_timer(&mut self, fx: &mut dyn Effects) {
        if !self.config.replication.anti_entropy_enabled {
            return;
        }
        let Some(peer) = self.slice_view.random_peer(&mut self.rng) else {
            return;
        };
        let range = self.next_anti_entropy_range();
        let digest = Arc::new(self.store.range_digest(range));
        // Adaptive chunk skipping: if the last exchange of this chunk with
        // this peer ended fully in sync and the chunk has not changed since
        // (same fingerprint), the whole round is elided. The entry is
        // consumed, so the next occurrence runs a full exchange — skips
        // halve steady-state traffic without ever parking a chunk for good.
        if let Some(synced) = self.ae_synced.remove(&(peer, range)) {
            if synced == digest.fingerprint() {
                self.stats.ae_chunks_skipped += 1;
                return;
            }
        }
        self.send_to(fx, peer, Message::AntiEntropyDigest { digest, range });
    }

    /// The key-range chunk the next anti-entropy exchange covers.
    ///
    /// The key space is divided into `store_shards` chunks (the same ranges
    /// the sharded store's shards own, so [`DataStore::range_digest`] is a
    /// cached-summary clone); successive rounds cycle over the chunks
    /// overlapping the node's slice range. A node without a slice yet falls
    /// back to whole-store exchanges.
    fn next_anti_entropy_range(&mut self) -> KeyRange {
        let Some(slice) = self.current_slice else {
            return KeyRange::FULL;
        };
        let chunks = SlicePartition::new(self.config.effective_store_shards());
        let slice_range = self.partition.range_of(slice);
        let first = chunks.slice_of(slice_range.start()).index();
        let last = chunks.slice_of(slice_range.end()).index();
        let pick = first + self.anti_entropy_cursor % (last - first + 1);
        self.anti_entropy_cursor = self.anti_entropy_cursor.wrapping_add(1);
        chunks.range_of(SliceId::new(pick))
    }

    // ------------------------------------------------------------------
    // Request dissemination (paper §IV-B)
    // ------------------------------------------------------------------

    fn handle_put(&mut self, request: Arc<PutRequest>, fx: &mut dyn Effects) {
        if !self.dedup.first_sighting(request.id) {
            self.stats.requests_duplicate += 1;
            return;
        }
        // This node forwards (and possibly rewrites) the request; unwrap the
        // shared copy, or clone it once if other deliveries still hold it.
        self.handle_put_locally_and_forward(Arc::unwrap_or_clone(request), false, fx);
    }

    fn handle_get(&mut self, request: Arc<GetRequest>, fx: &mut dyn Effects) {
        if !self.dedup.first_sighting(request.id) {
            self.stats.requests_duplicate += 1;
            return;
        }
        self.handle_get_locally_and_forward(Arc::unwrap_or_clone(request), false, fx);
    }

    fn handle_put_locally_and_forward(
        &mut self,
        mut request: PutRequest,
        from_client: bool,
        fx: &mut dyn Effects,
    ) {
        let target_slice = self.partition.slice_of(request.object.key);
        if self.current_slice == Some(target_slice) {
            // This node is a responsible replica: store and acknowledge. The
            // object is passed by reference — the store clones only what it
            // retains (one `Arc` bump on the value), and the request keeps
            // its object for the intra-slice fan-out below.
            let version = request.object.version;
            let key = request.object.key;
            match self.store.put(&request.object) {
                Ok(outcome) => {
                    if outcome.changed() {
                        self.stats.puts_stored += 1;
                    } else {
                        self.stats.puts_ignored += 1;
                    }
                    self.reply_to(
                        fx,
                        request.client,
                        request.id,
                        ReplyBody::PutAck { key, version },
                    );
                }
                Err(_) => {
                    // A full replica cannot store more data; it still keeps
                    // forwarding so other replicas receive the object.
                    self.stats.puts_ignored += 1;
                }
            }
            // Switch to (or continue) intra-slice dissemination.
            let ttl = if request.phase == DisseminationPhase::Global {
                self.config.dissemination.intra_ttl
            } else {
                request.ttl.saturating_sub(1)
            };
            if ttl > 0 {
                request.phase = DisseminationPhase::IntraSlice;
                request.ttl = ttl;
                let mut peers = mem::take(&mut self.peer_scratch);
                self.intra_slice_targets(target_slice, &mut peers);
                self.fan_out(fx, &peers, request, Message::Put);
                self.peer_scratch = peers;
            }
        } else if request.phase == DisseminationPhase::Global && request.ttl > 0 {
            // Not responsible: keep the epidemic search going while the TTL
            // allows it.
            request.ttl -= 1;
            let fanout = self.config.dissemination.global_fanout;
            let mut peers = mem::take(&mut self.peer_scratch);
            self.global_targets(fanout, target_slice, &mut peers);
            if peers.is_empty() && from_client {
                // An isolated contact node cannot make progress.
                self.stats.requests_expired += 1;
            }
            self.fan_out(fx, &peers, request, Message::Put);
            self.peer_scratch = peers;
        } else {
            self.stats.requests_expired += 1;
        }
    }

    fn handle_get_locally_and_forward(
        &mut self,
        mut request: GetRequest,
        from_client: bool,
        fx: &mut dyn Effects,
    ) {
        let target_slice = self.partition.slice_of(request.key);
        if self.current_slice == Some(target_slice) {
            let body = match self.store.get(request.key, request.version) {
                Some(object) => {
                    self.stats.gets_hit += 1;
                    ReplyBody::GetHit { object }
                }
                None => {
                    self.stats.gets_missed += 1;
                    ReplyBody::GetMiss { key: request.key }
                }
            };
            self.reply_to(fx, request.client, request.id, body);
            let ttl = if request.phase == DisseminationPhase::Global {
                self.config.dissemination.intra_ttl
            } else {
                request.ttl.saturating_sub(1)
            };
            if ttl > 0 {
                request.phase = DisseminationPhase::IntraSlice;
                request.ttl = ttl;
                let mut peers = mem::take(&mut self.peer_scratch);
                self.intra_slice_targets(target_slice, &mut peers);
                self.fan_out(fx, &peers, request, Message::Get);
                self.peer_scratch = peers;
            }
        } else if request.phase == DisseminationPhase::Global && request.ttl > 0 {
            request.ttl -= 1;
            let fanout = self.config.dissemination.global_fanout;
            let mut peers = mem::take(&mut self.peer_scratch);
            self.global_targets(fanout, target_slice, &mut peers);
            if peers.is_empty() && from_client {
                self.stats.requests_expired += 1;
            }
            self.fan_out(fx, &peers, request, Message::Get);
            self.peer_scratch = peers;
        } else {
            self.stats.requests_expired += 1;
        }
    }

    /// Sends one request to every peer, sharing a single reference-counted
    /// copy: the fan-out clones a pointer per peer, not the request body.
    /// `wrap` is the [`Message`] constructor (`Message::Put` or
    /// `Message::Get`).
    fn fan_out<T>(
        &mut self,
        fx: &mut dyn Effects,
        peers: &[NodeId],
        request: T,
        wrap: fn(Arc<T>) -> Message,
    ) {
        if peers.is_empty() {
            return;
        }
        let shared = Arc::new(request);
        for &peer in peers {
            self.send_to(fx, peer, wrap(Arc::clone(&shared)));
        }
    }

    /// Peers to forward an intra-slice dissemination to: the intra-slice view
    /// first, completed with global-view peers that advertise the target
    /// slice. Fills the caller's buffer instead of allocating.
    fn intra_slice_targets(&mut self, slice: SliceId, peers: &mut Vec<NodeId>) {
        let fanout = self.config.dissemination.intra_fanout;
        self.slice_view
            .sample_peers_into(fanout, &mut self.rng, peers);
        if peers.len() < fanout {
            for descriptor in self.cyclon.view().iter() {
                if peers.len() >= fanout {
                    break;
                }
                if descriptor.slice() == Some(slice) && !peers.contains(&descriptor.id()) {
                    peers.push(descriptor.id());
                }
            }
        }
    }

    /// Peers to forward a global-phase dissemination to. Peers known to be in
    /// the target slice are always included (so the search ends as soon as the
    /// view knows a member), the rest are random. Fills the caller's buffer
    /// instead of allocating.
    fn global_targets(&mut self, fanout: usize, target_slice: SliceId, peers: &mut Vec<NodeId>) {
        peers.clear();
        peers.extend(
            self.cyclon
                .view()
                .iter()
                .filter(|d| d.slice() == Some(target_slice))
                .map(NodeDescriptor::id)
                .take(fanout),
        );
        if peers.len() < fanout {
            let mut sample = mem::take(&mut self.sample_scratch);
            self.cyclon
                .view()
                .sample_peers_into(fanout, &mut self.rng, &mut sample);
            for &peer in &sample {
                if peers.len() >= fanout {
                    break;
                }
                if !peers.contains(&peer) {
                    peers.push(peer);
                }
            }
            sample.clear();
            self.sample_scratch = sample;
        }
    }

    /// Number of global-phase hops: enough for the epidemic search to reach a
    /// member of any slice with high probability, derived from the current
    /// slice count (the scarcer the slices, the deeper the search). This is
    /// the paper's §IV-B optimisation: "it is sufficient to reach only the
    /// percentage of system nodes that guarantees that some nodes of the
    /// target slice are reached", so the search is *not* sized to cover the
    /// whole system.
    fn global_ttl(&self) -> u32 {
        let redundancy = 3.0;
        let nodes_to_reach = (redundancy * f64::from(self.partition.slice_count())).max(2.0);
        let fanout = (self.config.dissemination.global_fanout.max(2)) as f64;
        (nodes_to_reach.ln() / fanout.ln()).ceil() as u32 + 1
    }

    // ------------------------------------------------------------------
    // Anti-entropy replica repair (paper §VII, implemented extension)
    // ------------------------------------------------------------------

    fn handle_anti_entropy_digest(
        &mut self,
        from: NodeId,
        remote: &StoreDigest,
        range: KeyRange,
        fx: &mut dyn Effects,
    ) {
        // The whole exchange stays scoped to the initiator's chunk: the
        // shipped batch and the echoed digest both cover only `range`, so an
        // initiator that summarised one shard is never flooded with the rest
        // of the replica.
        let objects: Arc<[StoredObject]> = self
            .store
            .objects_newer_than_in(
                remote,
                range,
                self.config.replication.max_objects_per_exchange,
            )
            .into();
        let digest = Arc::new(self.store.range_digest(range));
        self.send_to(
            fx,
            from,
            Message::AntiEntropyReply {
                objects,
                digest,
                range,
            },
        );
    }

    fn handle_anti_entropy_reply(
        &mut self,
        from: NodeId,
        objects: &[StoredObject],
        remote: &StoreDigest,
        range: KeyRange,
        fx: &mut dyn Effects,
    ) {
        self.apply_repair_objects(objects);
        let push = self.store.objects_newer_than_in(
            remote,
            range,
            self.config.replication.max_objects_per_exchange,
        );
        if push.is_empty() {
            if objects.is_empty() {
                // Nothing shipped in either direction: both replicas hold the
                // identical key/version map for this chunk, whose fingerprint
                // is exactly the remote digest's. Remember it so the next
                // round of this (peer, chunk) pair can be skipped if the
                // chunk is still unchanged.
                if self.ae_synced.len() >= 256 {
                    // Churned peers would otherwise accrete entries forever.
                    self.ae_synced.clear();
                }
                self.ae_synced.insert((from, range), remote.fingerprint());
            }
        } else {
            self.send_to(
                fx,
                from,
                Message::AntiEntropyPush {
                    objects: push.into(),
                },
            );
        }
    }

    fn apply_repair_objects(&mut self, objects: &[StoredObject]) {
        for object in objects {
            // Only accept objects this node's slice is responsible for;
            // anti-entropy must not re-spread foreign data.
            if !self.is_responsible_for(object.key) {
                continue;
            }
            if let Ok(outcome) = self.store.put(object) {
                if outcome == PutOutcome::Stored {
                    self.stats.objects_repaired += 1;
                    self.stats.puts_stored += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Internal plumbing
    // ------------------------------------------------------------------

    /// Feeds knowledge gathered by the Peer Sampling Service into the slicing
    /// protocol (attribute samples) and the intra-slice view (peers
    /// advertising the same slice).
    fn absorb_membership_knowledge(&mut self) {
        let mut descriptors = mem::take(&mut self.descriptor_scratch);
        descriptors.clear();
        descriptors.extend(self.cyclon.view().iter().copied());
        for &descriptor in &descriptors {
            self.slicer.observe(descriptor.id(), descriptor.profile());
            self.slice_view.observe(descriptor);
        }
        self.descriptor_scratch = descriptors;
    }

    /// Recomputes the local slice assignment and reacts to changes.
    fn refresh_slice_assignment(&mut self) {
        let new_slice = self.slicer.current_slice();
        if new_slice != self.current_slice {
            if self.current_slice.is_some() {
                self.stats.slice_changes += 1;
            }
            self.current_slice = new_slice;
            self.slice_view.set_slice(new_slice);
            self.cyclon.set_slice(new_slice);
            self.absorb_membership_knowledge();
        }
    }

    fn send_to(&mut self, fx: &mut dyn Effects, to: NodeId, message: Message) {
        self.stats.record_sent(message.kind());
        fx.emit_send(to, message);
    }

    fn reply_to(
        &mut self,
        fx: &mut dyn Effects,
        client: ClientId,
        request: RequestId,
        body: ReplyBody,
    ) {
        self.stats.record_sent(MessageKind::Reply);
        fx.emit_reply(
            client,
            ClientReply {
                request,
                responder: self.id,
                responder_slice: self.current_slice,
                body,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EffectBuffer;
    use crate::message::Output;
    use dataflasks_store::MemoryStore;
    use dataflasks_types::{RequestId, Value, Version};

    fn test_config() -> NodeConfig {
        NodeConfig::for_system_size(16, 2)
    }

    fn node(id: u64, capacity: u64) -> DataFlasksNode<MemoryStore> {
        DataFlasksNode::new(
            NodeId::new(id),
            test_config(),
            NodeProfile::with_capacity_and_tie_break(capacity, id),
            MemoryStore::unbounded(),
            0xD47A,
        )
    }

    fn descriptor(id: u64, capacity: u64, slice: Option<u32>) -> NodeDescriptor {
        NodeDescriptor::new(
            NodeId::new(id),
            NodeProfile::with_capacity_and_tie_break(capacity, id),
        )
        .with_slice(slice.map(SliceId::new))
    }

    /// Drives a timer and returns the emitted effects.
    fn timer_outputs(n: &mut DataFlasksNode<MemoryStore>, kind: TimerKind) -> Vec<Output> {
        let mut fx = EffectBuffer::new();
        n.on_timer(kind, SimTime::ZERO, &mut fx);
        fx.take()
    }

    /// Delivers a message and returns the emitted effects.
    fn message_outputs(
        n: &mut DataFlasksNode<MemoryStore>,
        from: u64,
        message: Message,
    ) -> Vec<Output> {
        let mut fx = EffectBuffer::new();
        n.handle_message(NodeId::new(from), message, SimTime::ZERO, &mut fx);
        fx.take()
    }

    /// Submits a client request and returns the emitted effects.
    fn client_outputs(
        n: &mut DataFlasksNode<MemoryStore>,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<Output> {
        let mut fx = EffectBuffer::new();
        n.handle_client_request(client, request, SimTime::ZERO, &mut fx);
        fx.take()
    }

    /// Filters the protocol sends out of an effect list.
    fn sends(outputs: &[Output]) -> Vec<(NodeId, Message)> {
        outputs
            .iter()
            .filter_map(|o| match o {
                Output::Send { to, message } => Some((*to, message.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn new_node_has_a_slice_and_empty_views() {
        let n = node(0, 100);
        assert!(n.slice().is_some());
        assert_eq!(n.view_len(), 0);
        assert_eq!(n.slice_view_len(), 0);
        assert_eq!(n.store().len(), 0);
        assert_eq!(n.stats().total_messages(), 0);
        assert_eq!(n.partition().slice_count(), 2);
    }

    #[test]
    fn bootstrap_populates_views_and_slicer() {
        let mut n = node(0, 100);
        n.bootstrap([descriptor(1, 10, None), descriptor(2, 1_000, None)]);
        assert_eq!(n.view_len(), 2);
        // One peer below us, one above: rank 1/3 → slice 0 of 2.
        assert_eq!(n.slice(), Some(SliceId::new(0)));
    }

    #[test]
    fn pss_timer_emits_a_shuffle_and_counts_it() {
        let mut n = node(0, 100);
        n.bootstrap([descriptor(1, 10, None)]);
        let outputs = timer_outputs(&mut n, TimerKind::PssShuffle);
        let sent = sends(&outputs);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, NodeId::new(1));
        assert!(matches!(sent[0].1, Message::Shuffle(_)));
        assert_eq!(n.stats().sent(MessageKind::Membership), 1);
    }

    #[test]
    fn every_timer_rearms_itself_at_its_configured_period() {
        let mut n = node(0, 100);
        let config = *n.config();
        for kind in TimerKind::ALL {
            let outputs = timer_outputs(&mut n, kind);
            let rearms: Vec<_> = outputs
                .iter()
                .filter_map(|o| match o {
                    Output::Timer { kind, after } => Some((*kind, *after)),
                    _ => None,
                })
                .collect();
            assert_eq!(rearms, vec![(kind, kind.period(&config))]);
        }
    }

    #[test]
    fn pss_timer_with_empty_view_sends_nothing() {
        let mut n = node(0, 100);
        assert!(sends(&timer_outputs(&mut n, TimerKind::PssShuffle)).is_empty());
        assert!(sends(&timer_outputs(&mut n, TimerKind::SliceGossip)).is_empty());
        assert!(sends(&timer_outputs(&mut n, TimerKind::AntiEntropy)).is_empty());
    }

    #[test]
    fn shuffle_request_gets_a_reply_and_feeds_the_slicer() {
        let mut a = node(1, 100);
        let mut b = node(2, 900);
        a.bootstrap([descriptor(2, 900, None)]);
        let outputs = timer_outputs(&mut a, TimerKind::PssShuffle);
        let sent = sends(&outputs);
        let replies = message_outputs(&mut b, 1, sent[0].1.clone());
        let reply_sends = sends(&replies);
        assert_eq!(reply_sends.len(), 1);
        assert_eq!(reply_sends[0].0, NodeId::new(1));
        assert!(matches!(reply_sends[0].1, Message::ShuffleReply(_)));
        assert_eq!(b.stats().received(MessageKind::Membership), 1);
        assert_eq!(b.stats().sent(MessageKind::Membership), 1);
    }

    #[test]
    fn slice_gossip_round_trip_updates_assignments() {
        let mut a = node(1, 10);
        let mut b = node(2, 1_000);
        a.bootstrap([descriptor(2, 1_000, None)]);
        b.bootstrap([descriptor(1, 10, None)]);
        let outputs = timer_outputs(&mut a, TimerKind::SliceGossip);
        let sent = sends(&outputs);
        assert_eq!(sent[0].0, NodeId::new(2));
        let replies = message_outputs(&mut b, 1, sent[0].1.clone());
        assert!(matches!(sends(&replies)[0].1, Message::SliceGossipReply(_)));
        // Low-capacity node in slice 0, high-capacity node in slice 1.
        assert_eq!(a.slice(), Some(SliceId::new(0)));
        assert_eq!(b.slice(), Some(SliceId::new(1)));
    }

    /// Builds a small fully-converged two-slice system for request tests:
    /// node ids 0..8, capacities increasing with the id, everyone knows
    /// everyone (views and slices are warm).
    fn warm_cluster() -> Vec<DataFlasksNode<MemoryStore>> {
        let count = 8u64;
        let mut nodes: Vec<DataFlasksNode<MemoryStore>> =
            (0..count).map(|i| node(i, (i + 1) * 100)).collect();
        // Let every node observe every other node's true profile, then refresh
        // slices and views twice so intra-slice views pick up advertised slices.
        for _ in 0..2 {
            let descriptors: Vec<NodeDescriptor> = nodes
                .iter()
                .map(|n| NodeDescriptor::new(n.id(), n.profile()).with_slice(n.slice()))
                .collect();
            for n in nodes.iter_mut() {
                let others: Vec<NodeDescriptor> = descriptors
                    .iter()
                    .copied()
                    .filter(|d| d.id() != n.id())
                    .collect();
                n.bootstrap(others);
            }
        }
        nodes
    }

    /// Delivers outputs until the network is quiet, returning the replies.
    fn run_to_quiescence(
        nodes: &mut [DataFlasksNode<MemoryStore>],
        mut pending: Vec<(NodeId, Output)>,
    ) -> Vec<ClientReply> {
        let mut replies = Vec::new();
        let mut fx = EffectBuffer::new();
        let mut guard = 0;
        while let Some((from, output)) = pending.pop() {
            guard += 1;
            assert!(guard < 100_000, "dissemination did not quiesce");
            match output {
                Output::Send { to, message } => {
                    let index = to.as_u64() as usize;
                    nodes[index].handle_message(from, message, SimTime::ZERO, &mut fx);
                    let sender = nodes[index].id();
                    pending.extend(fx.drain().map(|o| (sender, o)));
                }
                Output::SendBatch { to, messages } => {
                    let index = to.as_u64() as usize;
                    for message in messages {
                        nodes[index].handle_message(from, message, SimTime::ZERO, &mut fx);
                    }
                    let sender = nodes[index].id();
                    pending.extend(fx.drain().map(|o| (sender, o)));
                }
                Output::Reply { reply, .. } => replies.push(reply),
                Output::Timer { .. } => {}
            }
        }
        replies
    }

    #[test]
    fn put_reaches_every_replica_of_the_target_slice() {
        let mut nodes = warm_cluster();
        let key = Key::from_user_key("object-1");
        let target = nodes[0].partition().slice_of(key);
        let request = ClientRequest::Put {
            id: RequestId::new(9, 0),
            key,
            version: Version::new(1),
            value: Value::from_bytes(b"hello"),
        };
        let outputs = client_outputs(&mut nodes[0], 77, request);
        let origin = nodes[0].id();
        let replies = run_to_quiescence(
            &mut nodes,
            outputs.into_iter().map(|o| (origin, o)).collect(),
        );
        // Every node of the target slice stored the object.
        for n in &nodes {
            if n.slice() == Some(target) {
                assert!(
                    n.store().get_latest(key).is_some(),
                    "replica {} missing the object",
                    n.id()
                );
            } else {
                assert!(n.store().get_latest(key).is_none());
            }
        }
        // The client received at least one acknowledgement carrying the slice.
        assert!(!replies.is_empty());
        assert!(replies
            .iter()
            .all(|r| matches!(r.body, ReplyBody::PutAck { .. })));
        assert!(replies.iter().all(|r| r.responder_slice == Some(target)));
    }

    #[test]
    fn get_returns_the_stored_object_and_misses_unknown_keys() {
        let mut nodes = warm_cluster();
        let key = Key::from_user_key("object-2");
        let put = ClientRequest::Put {
            id: RequestId::new(9, 1),
            key,
            version: Version::new(4),
            value: Value::from_bytes(b"payload"),
        };
        let outs = client_outputs(&mut nodes[1], 5, put);
        let origin = nodes[1].id();
        run_to_quiescence(&mut nodes, outs.into_iter().map(|o| (origin, o)).collect());

        let get = ClientRequest::Get {
            id: RequestId::new(9, 2),
            key,
            version: Some(Version::new(4)),
        };
        let outs = client_outputs(&mut nodes[2], 5, get);
        let origin = nodes[2].id();
        let replies =
            run_to_quiescence(&mut nodes, outs.into_iter().map(|o| (origin, o)).collect());
        let hit = replies
            .iter()
            .find(|r| matches!(r.body, ReplyBody::GetHit { .. }))
            .expect("expected at least one hit");
        match &hit.body {
            ReplyBody::GetHit { object } => {
                assert_eq!(object.value.as_slice(), b"payload");
                assert_eq!(object.version, Version::new(4));
            }
            _ => unreachable!(),
        }

        // A key nobody stored produces only misses (from the responsible slice).
        let get_missing = ClientRequest::Get {
            id: RequestId::new(9, 3),
            key: Key::from_user_key("never-written"),
            version: None,
        };
        let outs = client_outputs(&mut nodes[3], 5, get_missing);
        let origin = nodes[3].id();
        let replies =
            run_to_quiescence(&mut nodes, outs.into_iter().map(|o| (origin, o)).collect());
        assert!(replies
            .iter()
            .all(|r| matches!(r.body, ReplyBody::GetMiss { .. })));
    }

    #[test]
    fn duplicate_requests_are_forwarded_only_once() {
        let mut n = node(0, 100);
        n.bootstrap([
            descriptor(1, 200, Some(1)),
            descriptor(2, 300, Some(1)),
            descriptor(3, 400, Some(1)),
        ]);
        let put = Arc::new(PutRequest {
            id: RequestId::new(1, 0),
            client: 1,
            object: StoredObject::new(Key::from_raw(u64::MAX), Version::new(1), Value::default()),
            phase: DisseminationPhase::Global,
            ttl: 4,
        });
        let first = message_outputs(&mut n, 9, Message::Put(Arc::clone(&put)));
        assert!(!first.is_empty());
        let second = message_outputs(&mut n, 8, Message::Put(put));
        assert!(second.is_empty());
        assert_eq!(n.stats().requests_duplicate, 1);
    }

    #[test]
    fn fan_out_shares_one_request_allocation() {
        let mut n = node(0, 100);
        n.bootstrap([
            descriptor(1, 200, Some(1)),
            descriptor(2, 300, Some(1)),
            descriptor(3, 400, Some(1)),
        ]);
        let put = Arc::new(PutRequest {
            id: RequestId::new(1, 7),
            client: 1,
            object: StoredObject::new(Key::from_raw(u64::MAX), Version::new(1), Value::default()),
            phase: DisseminationPhase::Global,
            ttl: 4,
        });
        let outputs = message_outputs(&mut n, 9, Message::Put(put));
        let forwarded: Vec<&Arc<PutRequest>> = outputs
            .iter()
            .filter_map(|o| match o {
                Output::Send {
                    message: Message::Put(request),
                    ..
                } => Some(request),
                _ => None,
            })
            .collect();
        assert!(forwarded.len() > 1, "expected a multi-peer fan-out");
        for window in forwarded.windows(2) {
            assert!(
                Arc::ptr_eq(window[0], window[1]),
                "fan-out copies must share one allocation"
            );
        }
    }

    #[test]
    fn expired_ttl_stops_global_dissemination() {
        let mut n = node(0, 100);
        n.bootstrap([descriptor(1, 200, None)]);
        // Key owned by a slice this node does not belong to, TTL already zero.
        let key = if n.is_responsible_for(Key::from_raw(0)) {
            Key::from_raw(u64::MAX)
        } else {
            Key::from_raw(0)
        };
        let put = Arc::new(PutRequest {
            id: RequestId::new(1, 1),
            client: 1,
            object: StoredObject::new(key, Version::new(1), Value::default()),
            phase: DisseminationPhase::Global,
            ttl: 0,
        });
        let outputs = message_outputs(&mut n, 9, Message::Put(put));
        assert!(outputs.is_empty());
        assert_eq!(n.stats().requests_expired, 1);
    }

    #[test]
    fn anti_entropy_repairs_a_stale_replica() {
        let mut nodes = warm_cluster();
        let key = Key::from_user_key("repair-me");
        let target = nodes[0].partition().slice_of(key);
        // Find two replicas of the target slice and seed only one of them.
        let replica_ids: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.slice() == Some(target))
            .map(|(i, _)| i)
            .collect();
        assert!(replica_ids.len() >= 2, "need at least two replicas");
        let (seeded, stale) = (replica_ids[0], replica_ids[1]);
        nodes[seeded]
            .store_mut()
            .put(&StoredObject::new(
                key,
                Version::new(7),
                Value::from_bytes(b"x"),
            ))
            .unwrap();
        assert!(nodes[stale].store().get_latest(key).is_none());

        // Drive anti-entropy from the stale replica until it talks to the
        // seeded one (its random peer choice may pick others first).
        let mut repaired = false;
        for _ in 0..32 {
            let outs = timer_outputs(&mut nodes[stale], TimerKind::AntiEntropy);
            let origin = nodes[stale].id();
            run_to_quiescence(&mut nodes, outs.into_iter().map(|o| (origin, o)).collect());
            if nodes[stale].store().get_latest(key).is_some() {
                repaired = true;
                break;
            }
        }
        assert!(repaired, "anti-entropy never repaired the stale replica");
        assert!(nodes[stale].stats().objects_repaired >= 1);
    }

    #[test]
    fn anti_entropy_skips_chunks_whose_fingerprint_matched_last_round() {
        // Two in-sync replicas with a single store chunk: after one fully
        // in-sync exchange, the next round of the same (peer, chunk) pair is
        // elided, and the round after that runs a full exchange again.
        let config = NodeConfig::for_system_size(4, 1).with_store_shards(1);
        let mut a = DataFlasksNode::new(
            NodeId::new(0),
            config,
            NodeProfile::with_capacity_and_tie_break(100, 0),
            MemoryStore::unbounded(),
            1,
        );
        let mut b = DataFlasksNode::new(
            NodeId::new(1),
            config,
            NodeProfile::with_capacity_and_tie_break(200, 1),
            MemoryStore::unbounded(),
            2,
        );
        a.bootstrap([descriptor(1, 200, Some(0))]);
        b.bootstrap([descriptor(0, 100, Some(0))]);
        let shared = StoredObject::new(Key::from_user_key("in-sync"), Version::new(3), {
            Value::from_bytes(b"same")
        });
        a.store_mut().put(&shared).unwrap();
        b.store_mut().put(&shared).unwrap();

        // One round = A's timer, B's reply, A's (possible) push back to B;
        // returns (digests sent, objects pushed back).
        let exchange = |a: &mut DataFlasksNode<MemoryStore>,
                        b: &mut DataFlasksNode<MemoryStore>|
         -> (usize, usize) {
            let outs = timer_outputs(a, TimerKind::AntiEntropy);
            let digests = sends(&outs);
            let mut pushes = 0;
            for (_, message) in &digests {
                let replies = message_outputs(b, 0, message.clone());
                for (_, reply) in sends(&replies) {
                    for (_, push) in sends(&message_outputs(a, 1, reply)) {
                        message_outputs(b, 0, push);
                        pushes += 1;
                    }
                }
            }
            (digests.len(), pushes)
        };
        // Round 1: a full exchange that ends in sync (nothing ships).
        assert_eq!(exchange(&mut a, &mut b), (1, 0), "round 1 sends the digest");
        assert_eq!(a.stats().ae_chunks_skipped, 0);
        // Round 2: same chunk, same fingerprint — skipped.
        assert_eq!(exchange(&mut a, &mut b), (0, 0), "round 2 is skipped");
        assert_eq!(a.stats().ae_chunks_skipped, 1);
        // Round 3: the skip entry was consumed — full exchange again.
        assert_eq!(exchange(&mut a, &mut b), (1, 0), "round 3 exchanges again");
        assert_eq!(a.stats().ae_chunks_skipped, 1);
        // Round 4 would skip, but a local write changed the fingerprint: the
        // exchange runs and repairs B instead.
        a.store_mut()
            .put(&StoredObject::new(
                Key::from_user_key("in-sync"),
                Version::new(9),
                Value::from_bytes(b"newer"),
            ))
            .unwrap();
        assert_eq!(
            exchange(&mut a, &mut b),
            (1, 1),
            "a changed chunk must exchange and repair, not skip"
        );
        assert_eq!(a.stats().ae_chunks_skipped, 1);
        assert_eq!(
            b.store().latest_version(Key::from_user_key("in-sync")),
            Some(Version::new(9)),
            "the push repaired the peer"
        );
    }

    #[test]
    fn anti_entropy_is_disabled_by_configuration() {
        let config = test_config().without_anti_entropy();
        let mut n = DataFlasksNode::new(
            NodeId::new(0),
            config,
            NodeProfile::default(),
            MemoryStore::unbounded(),
            1,
        );
        n.bootstrap([descriptor(1, 100, Some(0))]);
        assert!(sends(&timer_outputs(&mut n, TimerKind::AntiEntropy)).is_empty());
    }

    #[test]
    fn anti_entropy_never_imports_foreign_keys() {
        let mut n = node(0, 100);
        n.bootstrap([descriptor(1, 1_000, None)]); // we are the low node → slice 0
        let own_slice = n.slice().unwrap();
        let foreign_slice = SliceId::new((own_slice.index() + 1) % n.partition().slice_count());
        let foreign_key = n.partition().range_start(foreign_slice);
        let outputs = message_outputs(
            &mut n,
            1,
            Message::AntiEntropyPush {
                objects: vec![StoredObject::new(
                    foreign_key,
                    Version::new(1),
                    Value::default(),
                )]
                .into(),
            },
        );
        assert!(outputs.is_empty());
        assert_eq!(n.store().len(), 0);
    }

    #[test]
    fn reconfiguring_the_slice_count_changes_the_partition() {
        let mut n = node(0, 100);
        assert_eq!(n.partition().slice_count(), 2);
        n.set_slice_count(8);
        assert_eq!(n.partition().slice_count(), 8);
        assert_eq!(n.config().slicing.slice_count, 8);
        assert!(n.slice().unwrap().index() < 8);
    }

    #[test]
    fn prune_foreign_data_drops_keys_outside_the_slice() {
        let mut n = node(0, 100);
        n.bootstrap([descriptor(1, 1_000, None)]);
        // Insert objects across the whole key space directly into the store.
        for i in 0..32u64 {
            n.store_mut()
                .put(&StoredObject::new(
                    Key::from_raw(i.wrapping_mul(0x1111_1111_1111_1111)),
                    Version::new(1),
                    Value::default(),
                ))
                .unwrap();
        }
        let before = n.store().len();
        let removed = n.prune_foreign_data();
        assert!(removed > 0);
        assert_eq!(n.store().len() + removed, before);
        let slice = n.slice().unwrap();
        for key in n.store().keys() {
            assert!(n.partition().owns(slice, key));
        }
    }

    #[test]
    fn stats_track_request_traffic() {
        let mut nodes = warm_cluster();
        let request = ClientRequest::Put {
            id: RequestId::new(2, 0),
            key: Key::from_user_key("counted"),
            version: Version::new(1),
            value: Value::from_bytes(b"v"),
        };
        let outs = client_outputs(&mut nodes[0], 1, request);
        let origin = nodes[0].id();
        run_to_quiescence(&mut nodes, outs.into_iter().map(|o| (origin, o)).collect());
        let total_request_messages: u64 = nodes.iter().map(|n| n.stats().request_messages()).sum();
        assert!(total_request_messages > 0);
        let stored: u64 = nodes.iter().map(|n| n.stats().puts_stored).sum();
        assert!(stored > 0);
    }
}
