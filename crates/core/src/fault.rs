//! Seeded fault injection at the transport seam.
//!
//! A [`FaultPlan`] is the one decision point every backend consults before
//! handing a routed transport unit (an [`Output::Send`](crate::Output) or
//! [`Output::SendBatch`](crate::Output)) to its wire: the simulator inside
//! its event-queue routing, the threaded runtime at inbox push, the async
//! and socket backends at the frame boundary. Because partition and
//! blocked-link verdicts are pure functions of the `(from, to)` pair, the
//! same plan produces the same refusals on every backend regardless of
//! message interleaving — which is what lets the cross-backend parity
//! fuzzer replay partition and full-loss windows on all four runtimes and
//! demand byte-identical replies and statistics.
//!
//! Probabilistic faults (fractional loss, duplication) draw from a counter
//! hash of the plan's seed: single-threaded backends (the simulator) replay
//! them exactly; concurrent backends get well-defined empirical rates. The
//! parity subset therefore restricts probabilities to `{0, 1}`; fractional
//! probabilities are for simulator-only and bench scenarios.
//!
//! The plan is inert by default and checks one relaxed atomic on the hot
//! path, so a cluster that never injects faults pays nothing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use dataflasks_types::NodeId;

/// What should happen to one routed transport unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Deliver normally.
    Deliver,
    /// Refuse: the link crosses an active partition or blocked directed
    /// link. Counted as a `partition_refusals` on the sender.
    DropPartition,
    /// Drop: injected loss fired on this link. Counted as a
    /// `frames_dropped_injected` on the sender.
    DropLoss,
    /// Deliver twice: injected duplication fired on this link. Counted as a
    /// `frames_duplicated_injected` on the sender.
    Duplicate,
}

/// Per-dispatch accumulator for injected-fault accounting, folded into the
/// sender's [`NodeStats`](crate::NodeStats) after the flush (the sender's
/// host is borrowed while its effects route, so the counters travel
/// beside the routing callback and land afterwards).
/// All three counters count *protocol messages*, not transport units: a
/// dropped frame carrying an N-message batch counts N. The verdict is still
/// drawn once per transport unit, but the backends coalesce messages into
/// units on scheduling-dependent boundaries (the threaded runtime batches a
/// whole dispatch round, the simulator one event), so only the per-message
/// count is a pure function of the deterministic message flow — which is
/// what lets the parity fuzzer compare these fields exactly across backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedCounters {
    /// Messages dropped by injected loss.
    pub frames_dropped: u64,
    /// Messages delivered twice by injected duplication.
    pub frames_duplicated: u64,
    /// Messages refused because the link crossed an active partition
    /// or blocked directed link.
    pub partition_refusals: u64,
}

impl InjectedCounters {
    /// Returns `true` if nothing was injected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames_dropped == 0 && self.frames_duplicated == 0 && self.partition_refusals == 0
    }

    /// Bumps the counter matching `verdict` by one (no-op for
    /// [`LinkVerdict::Deliver`]).
    pub fn record(&mut self, verdict: LinkVerdict) {
        self.record_messages(verdict, 1);
    }

    /// Bumps the counter matching `verdict` by the number of protocol
    /// messages the affected transport unit carried (no-op for
    /// [`LinkVerdict::Deliver`]).
    pub fn record_messages(&mut self, verdict: LinkVerdict, messages: u64) {
        match verdict {
            LinkVerdict::Deliver => {}
            LinkVerdict::DropPartition => self.partition_refusals += messages,
            LinkVerdict::DropLoss => self.frames_dropped += messages,
            LinkVerdict::Duplicate => self.frames_duplicated += messages,
        }
    }
}

/// The mutable fault state, guarded by one mutex (mutated by the nemesis
/// driver between phases, read by routing paths while active).
#[derive(Debug, Default)]
struct FaultState {
    /// Partition group of each node, indexed by node id; `0` means
    /// ungrouped. Two grouped nodes in different groups cannot exchange
    /// transport units; an ungrouped node (e.g. one that joined after the
    /// partition was imposed) is unaffected.
    partition: Option<Vec<u32>>,
    /// Asymmetrically blocked directed links (`from → to` refused, the
    /// reverse direction untouched).
    blocked: Vec<(NodeId, NodeId)>,
    /// Loss probability in `[0, 1]` applied to matching links.
    loss_probability: f64,
    /// Directed links the loss applies to; `None` means every link.
    loss_links: Option<Vec<(NodeId, NodeId)>>,
    /// Duplication probability in `[0, 1]` applied to matching links.
    duplicate_probability: f64,
    /// Directed links the duplication applies to; `None` means every link.
    duplicate_links: Option<Vec<(NodeId, NodeId)>>,
}

impl FaultState {
    fn is_active(&self) -> bool {
        self.partition.is_some()
            || !self.blocked.is_empty()
            || self.loss_probability > 0.0
            || self.duplicate_probability > 0.0
    }
}

/// A thread-safe, seeded fault-injection plan shared (via `Arc`) between a
/// nemesis driver and a backend's routing paths.
///
/// # Example
///
/// ```
/// use dataflasks_core::fault::{FaultPlan, LinkVerdict};
/// use dataflasks_types::NodeId;
///
/// let plan = FaultPlan::new();
/// let (a, b) = (NodeId::new(0), NodeId::new(2));
/// assert_eq!(plan.link_verdict(a, b), LinkVerdict::Deliver);
/// // Partition even against odd ids: 0 → 2 stays open, 0 → 1 is refused.
/// plan.set_partition(&[vec![NodeId::new(0), NodeId::new(2)], vec![NodeId::new(1)]]);
/// assert_eq!(plan.link_verdict(a, b), LinkVerdict::Deliver);
/// assert_eq!(plan.link_verdict(a, NodeId::new(1)), LinkVerdict::DropPartition);
/// plan.heal();
/// assert_eq!(plan.link_verdict(a, NodeId::new(1)), LinkVerdict::Deliver);
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    /// Fast-path gate: `false` means no link fault is configured and
    /// [`Self::link_verdict`] returns without locking.
    active: AtomicBool,
    /// Seed of the probabilistic decision stream.
    seed: AtomicU64,
    /// Decisions drawn so far (the counter half of the counter hash).
    decisions: AtomicU64,
    /// Remaining frames to corrupt (single-bit flips at the frame
    /// boundary; socket/async backends only).
    corrupt_budget: AtomicU64,
    /// Frames corrupted so far — the number the cluster's `wire_rejects`
    /// total must match once the corrupted frames have been received.
    corrupted: AtomicU64,
    state: Mutex<FaultState>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultPlan {
    /// Creates an inert plan (every verdict is [`LinkVerdict::Deliver`]).
    #[must_use]
    pub fn new() -> Self {
        Self {
            active: AtomicBool::new(false),
            seed: AtomicU64::new(0xFA_17_5E_ED),
            decisions: AtomicU64::new(0),
            corrupt_budget: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Reseeds the probabilistic decision stream (and rewinds its counter).
    pub fn set_seed(&self, seed: u64) {
        self.seed.store(seed, Ordering::Relaxed);
        self.decisions.store(0, Ordering::Relaxed);
    }

    /// Returns `true` while any link fault is configured.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Decides the fate of one transport unit on the directed link
    /// `from → to`. Precedence: partition/blocked refusals, then loss, then
    /// duplication. Inert plans return [`LinkVerdict::Deliver`] after one
    /// relaxed load.
    #[must_use]
    pub fn link_verdict(&self, from: NodeId, to: NodeId) -> LinkVerdict {
        if !self.active.load(Ordering::Relaxed) {
            return LinkVerdict::Deliver;
        }
        let state = self.state.lock().expect("fault state poisoned");
        if let Some(groups) = &state.partition {
            let ga = groups.get(from.as_u64() as usize).copied().unwrap_or(0);
            let gb = groups.get(to.as_u64() as usize).copied().unwrap_or(0);
            if ga != 0 && gb != 0 && ga != gb {
                return LinkVerdict::DropPartition;
            }
        }
        if state.blocked.contains(&(from, to)) {
            return LinkVerdict::DropPartition;
        }
        if state.loss_probability > 0.0
            && link_matches(&state.loss_links, from, to)
            && self.chance(state.loss_probability)
        {
            return LinkVerdict::DropLoss;
        }
        if state.duplicate_probability > 0.0
            && link_matches(&state.duplicate_links, from, to)
            && self.chance(state.duplicate_probability)
        {
            return LinkVerdict::Duplicate;
        }
        LinkVerdict::Deliver
    }

    /// Imposes a partition: nodes in different groups cannot exchange
    /// transport units (both directions refused). Nodes in no group — e.g.
    /// ones that join while the partition holds — are unaffected.
    pub fn set_partition(&self, groups: &[Vec<NodeId>]) {
        let len = groups
            .iter()
            .flatten()
            .map(|id| id.as_u64() as usize + 1)
            .max()
            .unwrap_or(0);
        let mut assignment = vec![0u32; len];
        for (index, group) in groups.iter().enumerate() {
            for id in group {
                assignment[id.as_u64() as usize] = index as u32 + 1;
            }
        }
        let mut state = self.state.lock().expect("fault state poisoned");
        state.partition = Some(assignment);
        self.refresh_active(&state);
    }

    /// Blocks the directed link `from → to` (the reverse stays open).
    pub fn block_link(&self, from: NodeId, to: NodeId) {
        let mut state = self.state.lock().expect("fault state poisoned");
        if !state.blocked.contains(&(from, to)) {
            state.blocked.push((from, to));
        }
        self.refresh_active(&state);
    }

    /// Lifts the partition and every blocked directed link; loss and
    /// duplication windows are untouched (close them with probability 0).
    pub fn heal(&self) {
        let mut state = self.state.lock().expect("fault state poisoned");
        state.partition = None;
        state.blocked.clear();
        self.refresh_active(&state);
    }

    /// Configures injected loss: each matching transport unit is dropped
    /// with probability `p` (`links: None` matches every link). `p = 0`
    /// closes the window.
    pub fn set_loss(&self, links: Option<Vec<(NodeId, NodeId)>>, p: f64) {
        let mut state = self.state.lock().expect("fault state poisoned");
        state.loss_probability = p.clamp(0.0, 1.0);
        state.loss_links = links;
        self.refresh_active(&state);
    }

    /// Configures injected duplication: each matching transport unit is
    /// delivered twice with probability `p`. `p = 0` closes the window.
    pub fn set_duplicate(&self, links: Option<Vec<(NodeId, NodeId)>>, p: f64) {
        let mut state = self.state.lock().expect("fault state poisoned");
        state.duplicate_probability = p.clamp(0.0, 1.0);
        state.duplicate_links = links;
        self.refresh_active(&state);
    }

    /// Clears every configured link fault (partition, blocked links, loss,
    /// duplication) and any unspent corruption budget. The corrupted-frame
    /// total is preserved — it is the injected count receivers' rejects are
    /// audited against.
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("fault state poisoned");
        *state = FaultState::default();
        self.corrupt_budget.store(0, Ordering::Relaxed);
        self.refresh_active(&state);
    }

    /// Arms `frames` single-bit corruptions: the next `frames` transport
    /// units that ask [`Self::should_corrupt`] get their first message-tag
    /// byte's high bit flipped, which the wire decoder rejects as an
    /// unknown tag — never a silent mis-decode, never a panic.
    pub fn arm_corruption(&self, frames: u64) {
        self.corrupt_budget.fetch_add(frames, Ordering::Relaxed);
    }

    /// Consumes one unit of corruption budget. Byte transports call this
    /// per outbound frame and flip one bit when it returns `true`.
    #[must_use]
    pub fn should_corrupt(&self) -> bool {
        let mut budget = self.corrupt_budget.load(Ordering::Relaxed);
        while budget > 0 {
            match self.corrupt_budget.compare_exchange_weak(
                budget,
                budget - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.corrupted.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(actual) => budget = actual,
            }
        }
        false
    }

    /// Frames corrupted so far — the injected count the cluster-wide
    /// `wire_rejects` total must match once every corrupted frame has been
    /// received (invariant 4 of the checker).
    #[must_use]
    pub fn corrupted_frames(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }

    /// Draws one decision from the counter-hashed stream.
    fn chance(&self, p: f64) -> bool {
        if p >= 1.0 {
            // Certain faults never consume the stream: backends replaying
            // the parity subset (probabilities in {0, 1}) stay independent
            // of how many decisions other links drew.
            return true;
        }
        let n = self.decisions.fetch_add(1, Ordering::Relaxed);
        let z = splitmix64(self.seed.load(Ordering::Relaxed).wrapping_add(n));
        (z >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    fn refresh_active(&self, state: &FaultState) {
        self.active.store(state.is_active(), Ordering::Relaxed);
    }
}

fn link_matches(links: &Option<Vec<(NodeId, NodeId)>>, from: NodeId, to: NodeId) -> bool {
    match links {
        None => true,
        Some(list) => list.contains(&(from, to)),
    }
}

/// SplitMix64: the same finaliser the cluster spec derives node seeds with.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> NodeId {
        NodeId::new(n)
    }

    #[test]
    fn inert_plan_always_delivers() {
        let plan = FaultPlan::new();
        assert!(!plan.is_active());
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(plan.link_verdict(id(a), id(b)), LinkVerdict::Deliver);
            }
        }
        assert!(!plan.should_corrupt());
    }

    #[test]
    fn partition_refuses_cross_group_links_both_ways() {
        let plan = FaultPlan::new();
        plan.set_partition(&[vec![id(0), id(1)], vec![id(2), id(3)]]);
        assert!(plan.is_active());
        assert_eq!(plan.link_verdict(id(0), id(1)), LinkVerdict::Deliver);
        assert_eq!(plan.link_verdict(id(2), id(3)), LinkVerdict::Deliver);
        assert_eq!(plan.link_verdict(id(0), id(2)), LinkVerdict::DropPartition);
        assert_eq!(plan.link_verdict(id(3), id(1)), LinkVerdict::DropPartition);
        // An ungrouped node (joined after the split) talks to everyone.
        assert_eq!(plan.link_verdict(id(7), id(0)), LinkVerdict::Deliver);
        assert_eq!(plan.link_verdict(id(2), id(7)), LinkVerdict::Deliver);
        plan.heal();
        assert!(!plan.is_active());
        assert_eq!(plan.link_verdict(id(0), id(2)), LinkVerdict::Deliver);
    }

    #[test]
    fn blocked_links_are_asymmetric() {
        let plan = FaultPlan::new();
        plan.block_link(id(1), id(2));
        assert_eq!(plan.link_verdict(id(1), id(2)), LinkVerdict::DropPartition);
        assert_eq!(plan.link_verdict(id(2), id(1)), LinkVerdict::Deliver);
        plan.heal();
        assert_eq!(plan.link_verdict(id(1), id(2)), LinkVerdict::Deliver);
    }

    #[test]
    fn certain_loss_and_duplication_fire_deterministically() {
        let plan = FaultPlan::new();
        plan.set_loss(Some(vec![(id(0), id(1))]), 1.0);
        for _ in 0..100 {
            assert_eq!(plan.link_verdict(id(0), id(1)), LinkVerdict::DropLoss);
            assert_eq!(plan.link_verdict(id(1), id(0)), LinkVerdict::Deliver);
        }
        plan.set_loss(None, 0.0);
        plan.set_duplicate(None, 1.0);
        assert_eq!(plan.link_verdict(id(3), id(4)), LinkVerdict::Duplicate);
        plan.set_duplicate(None, 0.0);
        assert!(!plan.is_active());
    }

    #[test]
    fn fractional_loss_matches_the_configured_rate() {
        let plan = FaultPlan::new();
        plan.set_seed(7);
        plan.set_loss(None, 0.3);
        let trials = 20_000;
        let dropped = (0..trials)
            .filter(|_| plan.link_verdict(id(0), id(1)) == LinkVerdict::DropLoss)
            .count();
        let rate = dropped as f64 / f64::from(trials);
        assert!((rate - 0.3).abs() < 0.02, "empirical loss rate {rate}");
    }

    #[test]
    fn reseeding_replays_the_decision_stream() {
        let draw = |seed: u64| -> Vec<LinkVerdict> {
            let plan = FaultPlan::new();
            plan.set_seed(seed);
            plan.set_loss(None, 0.5);
            (0..64).map(|_| plan.link_verdict(id(0), id(1))).collect()
        };
        assert_eq!(draw(11), draw(11));
        assert_ne!(draw(11), draw(12));
    }

    #[test]
    fn corruption_budget_counts_down_and_records_totals() {
        let plan = FaultPlan::new();
        plan.arm_corruption(3);
        assert_eq!((0..10).filter(|_| plan.should_corrupt()).count(), 3);
        assert_eq!(plan.corrupted_frames(), 3);
        plan.clear();
        assert_eq!(plan.corrupted_frames(), 3, "totals survive clear");
        assert!(!plan.should_corrupt());
    }

    #[test]
    fn injected_counters_record_verdicts() {
        let mut counters = InjectedCounters::default();
        assert!(counters.is_empty());
        counters.record(LinkVerdict::Deliver);
        assert!(counters.is_empty());
        counters.record(LinkVerdict::DropLoss);
        counters.record(LinkVerdict::Duplicate);
        counters.record(LinkVerdict::DropPartition);
        counters.record(LinkVerdict::DropPartition);
        assert_eq!(counters.frames_dropped, 1);
        assert_eq!(counters.frames_duplicated, 1);
        assert_eq!(counters.partition_refusals, 2);
        // A dropped batch counts every message it carried.
        counters.record_messages(LinkVerdict::DropLoss, 5);
        assert_eq!(counters.frames_dropped, 6);
        counters.record_messages(LinkVerdict::Deliver, 5);
        assert_eq!(counters.frames_dropped, 6);
    }
}
