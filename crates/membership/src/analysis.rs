//! Overlay-graph analysis utilities.
//!
//! The quality of an epidemic substrate depends on the partial views forming
//! a well-mixed, connected overlay whose in-degree distribution is close to
//! uniform. These helpers compute the statistics used by the test-suite and
//! by the evaluation harness to verify that property on a collection of
//! views (one per node).

use std::collections::{HashMap, HashSet, VecDeque};

use dataflasks_types::NodeId;

use crate::view::PartialView;

/// Summary statistics of the in-degree distribution of an overlay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Number of nodes considered.
    pub nodes: usize,
    /// Mean in-degree.
    pub mean: f64,
    /// Standard deviation of the in-degree.
    pub std_dev: f64,
    /// Smallest in-degree observed.
    pub min: usize,
    /// Largest in-degree observed.
    pub max: usize,
}

/// Computes in-degree statistics over a collection of views (one per node).
///
/// The in-degree of a node is the number of other views that contain it.
/// A healthy peer-sampling overlay has a mean close to the view size and a
/// small standard deviation (no hub nodes, no forgotten nodes).
///
/// # Example
///
/// ```
/// use dataflasks_membership::{analysis, NodeDescriptor, PartialView};
/// use dataflasks_types::{NodeId, NodeProfile};
///
/// let mut a = PartialView::new(NodeId::new(0), 4);
/// a.insert(NodeDescriptor::new(NodeId::new(1), NodeProfile::default()));
/// let mut b = PartialView::new(NodeId::new(1), 4);
/// b.insert(NodeDescriptor::new(NodeId::new(0), NodeProfile::default()));
/// let stats = analysis::in_degree_stats(&[a, b]);
/// assert_eq!(stats.nodes, 2);
/// assert!((stats.mean - 1.0).abs() < f64::EPSILON);
/// ```
#[must_use]
pub fn in_degree_stats(views: &[PartialView]) -> DegreeStats {
    let mut in_degree: HashMap<NodeId, usize> = views.iter().map(|v| (v.owner(), 0)).collect();
    for view in views {
        for descriptor in view.iter() {
            if let Some(count) = in_degree.get_mut(&descriptor.id()) {
                *count += 1;
            }
        }
    }
    let nodes = in_degree.len();
    if nodes == 0 {
        return DegreeStats {
            nodes: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0,
            max: 0,
        };
    }
    let degrees: Vec<usize> = in_degree.values().copied().collect();
    let mean = degrees.iter().sum::<usize>() as f64 / nodes as f64;
    let variance = degrees
        .iter()
        .map(|&d| {
            let diff = d as f64 - mean;
            diff * diff
        })
        .sum::<f64>()
        / nodes as f64;
    DegreeStats {
        nodes,
        mean,
        std_dev: variance.sqrt(),
        min: degrees.iter().copied().min().unwrap_or(0),
        max: degrees.iter().copied().max().unwrap_or(0),
    }
}

/// Returns the number of nodes reachable from `start` by following view
/// edges (breadth-first search over the directed overlay graph).
///
/// A value equal to the number of views means the overlay is strongly
/// connected from `start`, which is what epidemic dissemination requires.
#[must_use]
pub fn reachable_from(views: &[PartialView], start: NodeId) -> usize {
    let adjacency: HashMap<NodeId, Vec<NodeId>> =
        views.iter().map(|v| (v.owner(), v.peer_ids())).collect();
    let mut visited: HashSet<NodeId> = HashSet::new();
    let mut queue = VecDeque::new();
    if adjacency.contains_key(&start) {
        visited.insert(start);
        queue.push_back(start);
    }
    while let Some(node) = queue.pop_front() {
        if let Some(neighbours) = adjacency.get(&node) {
            for &next in neighbours {
                if adjacency.contains_key(&next) && visited.insert(next) {
                    queue.push_back(next);
                }
            }
        }
    }
    visited.len()
}

/// Returns `true` if every node can reach every other node through view
/// edges. Quadratic in the number of nodes; intended for tests and offline
/// analysis, not for the protocol hot path.
#[must_use]
pub fn is_strongly_connected(views: &[PartialView]) -> bool {
    views
        .iter()
        .all(|v| reachable_from(views, v.owner()) == views.len())
}

/// Fraction of view entries pointing to nodes that are no longer part of the
/// system (`alive` is the set of live nodes). Used to quantify how quickly
/// the membership protocols forget departed nodes under churn.
#[must_use]
pub fn dead_link_ratio(views: &[PartialView], alive: &HashSet<NodeId>) -> f64 {
    let mut total = 0usize;
    let mut dead = 0usize;
    for view in views {
        for descriptor in view.iter() {
            total += 1;
            if !alive.contains(&descriptor.id()) {
                dead += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        dead as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::NodeDescriptor;
    use dataflasks_types::NodeProfile;

    fn view_with(owner: u64, peers: &[u64], capacity: usize) -> PartialView {
        let mut view = PartialView::new(NodeId::new(owner), capacity);
        for &p in peers {
            view.insert(NodeDescriptor::new(NodeId::new(p), NodeProfile::default()));
        }
        view
    }

    #[test]
    fn empty_overlay_has_zeroed_stats() {
        let stats = in_degree_stats(&[]);
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.mean, 0.0);
    }

    #[test]
    fn ring_overlay_has_uniform_in_degree() {
        let views: Vec<PartialView> = (0..10u64)
            .map(|i| view_with(i, &[(i + 1) % 10], 4))
            .collect();
        let stats = in_degree_stats(&views);
        assert_eq!(stats.nodes, 10);
        assert!((stats.mean - 1.0).abs() < f64::EPSILON);
        assert_eq!(stats.std_dev, 0.0);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 1);
    }

    #[test]
    fn star_overlay_has_skewed_in_degree() {
        // Everyone points at node 0; node 0 points at node 1.
        let mut views = vec![view_with(0, &[1], 4)];
        views.extend((1..6u64).map(|i| view_with(i, &[0], 4)));
        let stats = in_degree_stats(&views);
        assert_eq!(stats.max, 5);
        assert!(stats.std_dev > 1.0);
    }

    #[test]
    fn reachability_on_a_ring_is_complete() {
        let views: Vec<PartialView> = (0..8u64).map(|i| view_with(i, &[(i + 1) % 8], 4)).collect();
        assert_eq!(reachable_from(&views, NodeId::new(0)), 8);
        assert!(is_strongly_connected(&views));
    }

    #[test]
    fn reachability_detects_partitions() {
        // Two disjoint rings of 4.
        let mut views: Vec<PartialView> =
            (0..4u64).map(|i| view_with(i, &[(i + 1) % 4], 4)).collect();
        views.extend((4..8u64).map(|i| view_with(i, &[4 + (i + 1 - 4) % 4], 4)));
        assert_eq!(reachable_from(&views, NodeId::new(0)), 4);
        assert!(!is_strongly_connected(&views));
    }

    #[test]
    fn reachability_of_unknown_start_is_zero() {
        let views = vec![view_with(0, &[1], 4), view_with(1, &[0], 4)];
        assert_eq!(reachable_from(&views, NodeId::new(99)), 0);
    }

    #[test]
    fn dead_link_ratio_counts_departed_nodes() {
        let views = vec![view_with(0, &[1, 2], 4), view_with(1, &[0, 2], 4)];
        let alive: HashSet<NodeId> = [NodeId::new(0), NodeId::new(1)].into_iter().collect();
        let ratio = dead_link_ratio(&views, &alive);
        assert!((ratio - 0.5).abs() < f64::EPSILON);
        let all_alive: HashSet<NodeId> = [NodeId::new(0), NodeId::new(1), NodeId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(dead_link_ratio(&views, &all_alive), 0.0);
        assert_eq!(dead_link_ratio(&[], &all_alive), 0.0);
    }
}
