//! Peer Sampling Service for DataFlasks.
//!
//! Epidemic protocols rely on every node holding a small *partial view* of
//! the system that is continuously refreshed so that it behaves like a
//! uniformly random sample of all live nodes. This crate implements the
//! membership substrate the paper builds on:
//!
//! * [`NodeDescriptor`] and [`PartialView`] — the bounded, age-tracked view
//!   data structure shared by all gossip protocols,
//! * [`CyclonProtocol`] — the Cyclon shuffle protocol \[Voulgaris et al. 2005\],
//!   the Peer Sampling Service used by DataFlasks,
//! * [`NewscastProtocol`] — a Newscast-style alternative (freshness-based
//!   merge of full views), provided for comparison experiments,
//! * [`SliceView`] — the *intra-slice* view used once a request has reached
//!   its target slice (dissemination then stays inside the slice),
//! * [`analysis`] — graph statistics (in-degree distribution, reachability)
//!   used by the test-suite and the evaluation harness to check that views
//!   are indeed close to uniformly random.
//!
//! All protocols are written sans-io: they consume decoded messages and
//! return messages to send, so the same code runs in the discrete-event
//! simulator and in the threaded runtime.
//!
//! # Example
//!
//! ```
//! use dataflasks_membership::{CyclonProtocol, NodeDescriptor, PeerSampling};
//! use dataflasks_types::{NodeId, NodeProfile, PssConfig};
//! use rand::SeedableRng;
//!
//! let cfg = PssConfig::default();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let me = NodeId::new(0);
//! let mut cyclon = CyclonProtocol::new(me, cfg);
//!
//! // Bootstrap with one known contact.
//! cyclon.view_mut().insert(NodeDescriptor::new(NodeId::new(1), NodeProfile::default()));
//!
//! // Initiate a shuffle: returns the chosen peer and the request to send.
//! let (peer, _request) = cyclon.initiate_shuffle(&mut rng).expect("view not empty");
//! assert_eq!(peer, NodeId::new(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cyclon;
pub mod descriptor;
pub mod newscast;
pub mod slice_view;
pub mod view;

pub use cyclon::{CyclonProtocol, ShuffleRequest, ShuffleResponse};
pub use descriptor::NodeDescriptor;
pub use newscast::{NewscastExchange, NewscastProtocol};
pub use slice_view::SliceView;
pub use view::PartialView;

/// Common behaviour of the peer-sampling protocols in this crate.
///
/// The DataFlasks node is generic over its Peer Sampling Service through
/// this trait so that Cyclon (the default) and Newscast can be swapped in
/// experiments without touching the node logic.
pub trait PeerSampling {
    /// The node this protocol instance runs on.
    fn local_id(&self) -> dataflasks_types::NodeId;

    /// Read access to the current partial view.
    fn view(&self) -> &PartialView;

    /// Write access to the current partial view (used for bootstrapping and
    /// by the failure detector to purge descriptors of dead nodes).
    fn view_mut(&mut self) -> &mut PartialView;

    /// Selects up to `n` distinct random peers from the view.
    fn random_peers<R: rand::Rng>(&self, n: usize, rng: &mut R) -> Vec<dataflasks_types::NodeId> {
        self.view().sample_peers(n, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflasks_types::{NodeId, NodeProfile, PssConfig};

    #[test]
    fn peer_sampling_trait_is_usable_with_both_protocols() {
        fn view_len<P: PeerSampling>(p: &P) -> usize {
            p.view().len()
        }
        let mut cyclon = CyclonProtocol::new(NodeId::new(0), PssConfig::default());
        cyclon
            .view_mut()
            .insert(NodeDescriptor::new(NodeId::new(1), NodeProfile::default()));
        let newscast = NewscastProtocol::new(NodeId::new(2), PssConfig::default());
        assert_eq!(view_len(&cyclon), 1);
        assert_eq!(view_len(&newscast), 0);
    }
}
