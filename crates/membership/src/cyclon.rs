//! The Cyclon shuffle protocol (Voulgaris, Gavidia, van Steen 2005).
//!
//! Cyclon is the Peer Sampling Service used by DataFlasks. Periodically each
//! node picks the *oldest* neighbour in its view, removes it, and exchanges a
//! random subset of its view (plus a fresh descriptor of itself) with that
//! neighbour. Both sides merge the received descriptors, preferring them over
//! the ones they sent away. The resulting directed graph is continuously
//! re-wired and its views converge to uniformly random samples of the
//! membership — the property epidemic dissemination relies on.

use rand::Rng;

use dataflasks_types::{NodeId, NodeProfile, PssConfig, SliceId};

use crate::descriptor::NodeDescriptor;
use crate::view::PartialView;
use crate::PeerSampling;

/// A Cyclon shuffle request: the initiator's descriptor subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuffleRequest {
    /// Descriptors offered by the initiator (includes a fresh descriptor of
    /// the initiator itself).
    pub descriptors: Vec<NodeDescriptor>,
}

/// A Cyclon shuffle response: the responder's descriptor subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuffleResponse {
    /// Descriptors offered by the responder.
    pub descriptors: Vec<NodeDescriptor>,
}

/// State machine of the Cyclon protocol for one node.
///
/// The protocol is sans-io: [`CyclonProtocol::initiate_shuffle`] returns the
/// peer to contact and the request payload, [`CyclonProtocol::handle_request`]
/// returns the response payload, and the caller is responsible for delivering
/// them (the simulator and the threaded runtime each provide a transport).
///
/// # Example
///
/// ```
/// use dataflasks_membership::{CyclonProtocol, NodeDescriptor, PeerSampling};
/// use dataflasks_types::{NodeId, NodeProfile, PssConfig};
/// use rand::SeedableRng;
///
/// let cfg = PssConfig::default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut a = CyclonProtocol::new(NodeId::new(1), cfg);
/// let mut b = CyclonProtocol::new(NodeId::new(2), cfg);
/// a.view_mut().insert(NodeDescriptor::new(NodeId::new(2), NodeProfile::default()));
///
/// let (peer, request) = a.initiate_shuffle(&mut rng).unwrap();
/// assert_eq!(peer, b.local_id());
/// let response = b.handle_request(a.local_id(), request, &mut rng);
/// a.handle_response(response);
/// assert!(b.view().contains(NodeId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct CyclonProtocol {
    local_id: NodeId,
    config: PssConfig,
    profile: NodeProfile,
    slice: Option<SliceId>,
    view: PartialView,
    /// Descriptors sent in the most recent shuffle we initiated, kept until
    /// the response arrives so that the merge can prefer received entries.
    pending_sent: Vec<NodeDescriptor>,
    shuffles_initiated: u64,
    shuffles_answered: u64,
}

impl CyclonProtocol {
    /// Creates a Cyclon instance for `local_id` with an empty view.
    #[must_use]
    pub fn new(local_id: NodeId, config: PssConfig) -> Self {
        Self {
            local_id,
            config,
            profile: NodeProfile::default(),
            slice: None,
            view: PartialView::new(local_id, config.view_size),
            pending_sent: Vec::new(),
            shuffles_initiated: 0,
            shuffles_answered: 0,
        }
    }

    /// Creates a Cyclon instance advertising the given profile.
    #[must_use]
    pub fn with_profile(local_id: NodeId, config: PssConfig, profile: NodeProfile) -> Self {
        let mut p = Self::new(local_id, config);
        p.profile = profile;
        p
    }

    /// Sets the profile advertised in the node's own descriptor.
    pub fn set_profile(&mut self, profile: NodeProfile) {
        self.profile = profile;
    }

    /// Sets the slice advertised in the node's own descriptor (called by the
    /// slice manager whenever the local slice assignment changes).
    pub fn set_slice(&mut self, slice: Option<SliceId>) {
        self.slice = slice;
    }

    /// The slice currently advertised by this node.
    #[must_use]
    pub fn advertised_slice(&self) -> Option<SliceId> {
        self.slice
    }

    /// Number of shuffles this node initiated.
    #[must_use]
    pub fn shuffles_initiated(&self) -> u64 {
        self.shuffles_initiated
    }

    /// Number of shuffle requests this node answered.
    #[must_use]
    pub fn shuffles_answered(&self) -> u64 {
        self.shuffles_answered
    }

    /// Seeds the view with bootstrap contacts (used at start-up or when
    /// re-joining after a failure).
    pub fn bootstrap<I>(&mut self, contacts: I)
    where
        I: IntoIterator<Item = NodeDescriptor>,
    {
        for contact in contacts {
            self.view.insert(contact);
        }
    }

    /// A fresh descriptor of the local node, as advertised in shuffles.
    #[must_use]
    pub fn self_descriptor(&self) -> NodeDescriptor {
        NodeDescriptor::new(self.local_id, self.profile).with_slice(self.slice)
    }

    /// Starts one shuffle round.
    ///
    /// Ages the whole view, removes the oldest neighbour `q`, selects
    /// `shuffle_length - 1` additional random descriptors, prepends a fresh
    /// descriptor of the local node and returns `(q, request)`. Returns
    /// `None` when the view is empty (an isolated node has nobody to shuffle
    /// with until it is bootstrapped again).
    pub fn initiate_shuffle<R: Rng>(&mut self, rng: &mut R) -> Option<(NodeId, ShuffleRequest)> {
        self.view.age_and_expire(self.config.max_descriptor_age);
        let target = self.view.oldest_peer()?;
        // The target is removed from the view: if it is dead we forget it, if
        // it is alive it will most likely come back through the exchange.
        self.view.remove(target);
        let mut sent = self
            .view
            .take_random(self.config.shuffle_length.saturating_sub(1), rng);
        let mut descriptors = Vec::with_capacity(sent.len() + 1);
        descriptors.push(self.self_descriptor());
        descriptors.extend(sent.iter().copied());
        // Keep what we sent so the merge can prefer received descriptors, and
        // put the sent entries back until the response arrives (Cyclon keeps
        // them; they are replaced on merge if needed).
        for d in &sent {
            self.view.insert(*d);
        }
        sent.push(self.self_descriptor());
        self.pending_sent = sent;
        self.shuffles_initiated += 1;
        Some((target, ShuffleRequest { descriptors }))
    }

    /// Handles a shuffle request from `from`, returning the response to send
    /// back.
    pub fn handle_request<R: Rng>(
        &mut self,
        from: NodeId,
        request: ShuffleRequest,
        rng: &mut R,
    ) -> ShuffleResponse {
        self.shuffles_answered += 1;
        let offered = self.view.sample(self.config.shuffle_length, rng);
        self.view
            .merge_shuffle(Self::sanitize(request.descriptors, self.local_id), &offered);
        // Knowing the requester is always useful: make sure it is represented.
        // Only a placeholder is inserted when the merge did not already bring
        // in the requester's own (profile- and slice-carrying) descriptor, so
        // real information is never overwritten by a blank entry.
        if !self.view.contains(from) {
            self.view
                .insert(NodeDescriptor::new(from, NodeProfile::default()));
        }
        ShuffleResponse {
            descriptors: offered,
        }
    }

    /// Handles the response to a shuffle this node initiated.
    pub fn handle_response(&mut self, response: ShuffleResponse) {
        let sent = std::mem::take(&mut self.pending_sent);
        self.view
            .merge_shuffle(Self::sanitize(response.descriptors, self.local_id), &sent);
    }

    /// Notifies the protocol that `peer` is suspected dead (e.g. a request to
    /// it timed out); its descriptor is dropped so it stops being advertised.
    pub fn purge(&mut self, peer: NodeId) {
        self.view.remove(peer);
    }

    fn sanitize(descriptors: Vec<NodeDescriptor>, local: NodeId) -> Vec<NodeDescriptor> {
        descriptors
            .into_iter()
            .filter(|d| d.id() != local)
            .collect()
    }
}

impl PeerSampling for CyclonProtocol {
    fn local_id(&self) -> NodeId {
        self.local_id
    }

    fn view(&self) -> &PartialView {
        &self.view
    }

    fn view_mut(&mut self) -> &mut PartialView {
        &mut self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn descriptor(id: u64) -> NodeDescriptor {
        NodeDescriptor::new(NodeId::new(id), NodeProfile::default())
    }

    fn bootstrap_ring(count: u64, cfg: PssConfig) -> Vec<CyclonProtocol> {
        (0..count)
            .map(|i| {
                let mut p = CyclonProtocol::new(NodeId::new(i), cfg);
                p.bootstrap([descriptor((i + 1) % count)]);
                p
            })
            .collect()
    }

    #[test]
    fn initiate_with_empty_view_returns_none() {
        let mut p = CyclonProtocol::new(NodeId::new(0), PssConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(p.initiate_shuffle(&mut rng).is_none());
    }

    #[test]
    fn shuffle_request_starts_with_fresh_self_descriptor() {
        let mut p = CyclonProtocol::new(NodeId::new(7), PssConfig::default());
        p.bootstrap((1..5).map(descriptor));
        let mut rng = StdRng::seed_from_u64(0);
        let (_, request) = p.initiate_shuffle(&mut rng).unwrap();
        assert_eq!(request.descriptors[0].id(), NodeId::new(7));
        assert_eq!(request.descriptors[0].age(), 0);
        assert!(request.descriptors.len() <= PssConfig::default().shuffle_length);
    }

    #[test]
    fn shuffle_targets_the_oldest_peer_and_removes_it() {
        let mut p = CyclonProtocol::new(NodeId::new(0), PssConfig::default());
        p.bootstrap([descriptor(1).with_age(1), descriptor(2).with_age(9)]);
        let mut rng = StdRng::seed_from_u64(0);
        let (target, _) = p.initiate_shuffle(&mut rng).unwrap();
        assert_eq!(target, NodeId::new(2));
        assert!(!p.view().contains(NodeId::new(2)));
    }

    #[test]
    fn responder_learns_about_the_initiator() {
        let cfg = PssConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = CyclonProtocol::new(NodeId::new(1), cfg);
        let mut b = CyclonProtocol::new(NodeId::new(2), cfg);
        a.bootstrap([descriptor(2)]);
        let (_, request) = a.initiate_shuffle(&mut rng).unwrap();
        let _ = b.handle_request(NodeId::new(1), request, &mut rng);
        assert!(b.view().contains(NodeId::new(1)));
    }

    #[test]
    fn full_exchange_converges_to_mutual_knowledge() {
        let cfg = PssConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = CyclonProtocol::new(NodeId::new(1), cfg);
        let mut b = CyclonProtocol::new(NodeId::new(2), cfg);
        a.bootstrap([descriptor(2)]);
        b.bootstrap([descriptor(5), descriptor(6)]);
        let (target, request) = a.initiate_shuffle(&mut rng).unwrap();
        assert_eq!(target, NodeId::new(2));
        let response = b.handle_request(NodeId::new(1), request, &mut rng);
        a.handle_response(response);
        // a should now know some of b's neighbours or at least keep a full view.
        assert!(!a.view().is_empty());
        assert!(b.view().contains(NodeId::new(1)));
        assert_eq!(a.shuffles_initiated(), 1);
        assert_eq!(b.shuffles_answered(), 1);
    }

    #[test]
    fn views_never_contain_self_or_exceed_capacity() {
        let cfg = PssConfig {
            view_size: 6,
            shuffle_length: 4,
            ..PssConfig::default()
        };
        let mut nodes = bootstrap_ring(20, cfg);
        let mut rng = StdRng::seed_from_u64(3);
        for _round in 0..50 {
            for i in 0..nodes.len() {
                let Some((target, request)) = nodes[i].initiate_shuffle(&mut rng) else {
                    continue;
                };
                let initiator = nodes[i].local_id();
                let t = target.as_u64() as usize;
                let response = nodes[t].handle_request(initiator, request, &mut rng);
                nodes[i].handle_response(response);
            }
        }
        for node in &nodes {
            assert!(node.view().len() <= cfg.view_size);
            assert!(!node.view().contains(node.local_id()));
            assert!(!node.view().is_empty(), "connectivity must be preserved");
        }
    }

    #[test]
    fn ring_converges_to_random_like_overlay() {
        // Starting from a ring (each node knows only its successor), repeated
        // shuffles must spread knowledge: the average view size approaches the
        // configured capacity and in-degrees even out.
        let cfg = PssConfig {
            view_size: 8,
            shuffle_length: 5,
            ..PssConfig::default()
        };
        let mut nodes = bootstrap_ring(40, cfg);
        let mut rng = StdRng::seed_from_u64(4);
        for _round in 0..60 {
            for i in 0..nodes.len() {
                if let Some((target, request)) = nodes[i].initiate_shuffle(&mut rng) {
                    let initiator = nodes[i].local_id();
                    let t = target.as_u64() as usize;
                    let response = nodes[t].handle_request(initiator, request, &mut rng);
                    nodes[i].handle_response(response);
                }
            }
        }
        let avg_view: f64 =
            nodes.iter().map(|n| n.view().len() as f64).sum::<f64>() / nodes.len() as f64;
        assert!(avg_view > 6.0, "views should fill up, got {avg_view}");
        let views: Vec<PartialView> = nodes.iter().map(|n| n.view().clone()).collect();
        let stats = crate::analysis::in_degree_stats(&views);
        assert!(stats.max <= 40);
        assert!(stats.mean > 5.0);
    }

    #[test]
    fn purge_forgets_a_dead_peer() {
        let mut p = CyclonProtocol::new(NodeId::new(0), PssConfig::default());
        p.bootstrap([descriptor(1), descriptor(2)]);
        p.purge(NodeId::new(1));
        assert!(!p.view().contains(NodeId::new(1)));
        assert!(p.view().contains(NodeId::new(2)));
    }

    #[test]
    fn slice_and_profile_are_advertised() {
        let mut p = CyclonProtocol::with_profile(
            NodeId::new(0),
            PssConfig::default(),
            NodeProfile::with_capacity(42),
        );
        p.set_slice(Some(SliceId::new(3)));
        let d = p.self_descriptor();
        assert_eq!(d.profile().capacity(), 42);
        assert_eq!(d.slice(), Some(SliceId::new(3)));
        assert_eq!(p.advertised_slice(), Some(SliceId::new(3)));
    }

    #[test]
    fn stale_descriptors_expire_during_shuffles() {
        let cfg = PssConfig {
            max_descriptor_age: 2,
            ..PssConfig::default()
        };
        let mut p = CyclonProtocol::new(NodeId::new(0), cfg);
        p.bootstrap([descriptor(1).with_age(0), descriptor(2).with_age(2)]);
        let mut rng = StdRng::seed_from_u64(5);
        // First shuffle ages both; descriptor 2 exceeds max age and is dropped.
        let _ = p.initiate_shuffle(&mut rng);
        assert!(!p.view().contains(NodeId::new(2)));
    }
}
