//! The bounded partial view data structure.

use std::collections::HashMap;
use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use dataflasks_types::NodeId;

use crate::descriptor::NodeDescriptor;

/// A bounded set of [`NodeDescriptor`]s, at most one per node.
///
/// The view keeps the freshest descriptor seen for each node and never grows
/// beyond its capacity; when full, the oldest descriptors are evicted first.
/// It is the backing store of both the global Cyclon view and the intra-slice
/// view.
///
/// # Example
///
/// ```
/// use dataflasks_membership::{NodeDescriptor, PartialView};
/// use dataflasks_types::{NodeId, NodeProfile};
///
/// let mut view = PartialView::new(NodeId::new(0), 3);
/// for i in 1..=5u64 {
///     view.insert(NodeDescriptor::new(NodeId::new(i), NodeProfile::default()));
/// }
/// assert_eq!(view.len(), 3); // bounded
/// assert!(!view.contains(NodeId::new(0))); // never contains the owner
/// ```
#[derive(Debug, Clone)]
pub struct PartialView {
    owner: NodeId,
    capacity: usize,
    entries: Vec<NodeDescriptor>,
}

impl PartialView {
    /// Creates an empty view owned by `owner` holding at most `capacity`
    /// descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "a view needs a non-zero capacity");
        Self {
            owner,
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// The node that owns this view.
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Maximum number of descriptors the view holds.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of descriptors currently in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the view holds no descriptors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if the view holds a descriptor for `node`.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|d| d.id() == node)
    }

    /// Returns the descriptor for `node`, if present.
    #[must_use]
    pub fn get(&self, node: NodeId) -> Option<&NodeDescriptor> {
        self.entries.iter().find(|d| d.id() == node)
    }

    /// Iterates over the descriptors in the view.
    pub fn iter(&self) -> impl Iterator<Item = &NodeDescriptor> {
        self.entries.iter()
    }

    /// Returns the identities of all nodes in the view.
    #[must_use]
    pub fn peer_ids(&self) -> Vec<NodeId> {
        self.entries.iter().map(NodeDescriptor::id).collect()
    }

    /// Inserts a descriptor, keeping the freshest copy per node and evicting
    /// the oldest descriptor if the view is over capacity.
    ///
    /// Descriptors of the owner itself are ignored (a node never keeps itself
    /// in its own view). Returns `true` if the view changed.
    pub fn insert(&mut self, descriptor: NodeDescriptor) -> bool {
        if descriptor.id() == self.owner {
            return false;
        }
        if let Some(existing) = self.entries.iter_mut().find(|d| d.id() == descriptor.id()) {
            if descriptor.is_fresher_than(existing)
                || (descriptor.age() == existing.age() && *existing != descriptor)
            {
                *existing = descriptor;
                return true;
            }
            return false;
        }
        self.entries.push(descriptor);
        if self.entries.len() > self.capacity {
            self.evict_oldest();
        }
        true
    }

    /// Removes the descriptor for `node`, returning it if it was present.
    pub fn remove(&mut self, node: NodeId) -> Option<NodeDescriptor> {
        let index = self.entries.iter().position(|d| d.id() == node)?;
        Some(self.entries.swap_remove(index))
    }

    /// Increments the age of every descriptor in the view by one round and
    /// drops descriptors older than `max_age`.
    pub fn age_and_expire(&mut self, max_age: u32) {
        for d in &mut self.entries {
            d.increase_age();
        }
        self.entries.retain(|d| d.age() <= max_age);
    }

    /// Returns the identity of the oldest descriptor in the view (ties broken
    /// by node identity for determinism).
    #[must_use]
    pub fn oldest_peer(&self) -> Option<NodeId> {
        self.entries
            .iter()
            .max_by_key(|d| (d.age(), d.id()))
            .map(NodeDescriptor::id)
    }

    /// Selects up to `n` distinct random descriptors from the view.
    #[must_use]
    pub fn sample<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<NodeDescriptor> {
        let mut copy: Vec<NodeDescriptor> = self.entries.clone();
        copy.shuffle(rng);
        copy.truncate(n);
        copy
    }

    /// Selects up to `n` distinct random peer identities from the view.
    #[must_use]
    pub fn sample_peers<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<NodeId> {
        let mut peers = Vec::new();
        self.sample_peers_into(n, rng, &mut peers);
        peers
    }

    /// Like [`Self::sample_peers`], but fills a caller-owned buffer so hot
    /// paths can reuse one allocation across calls. The buffer is cleared
    /// first.
    pub fn sample_peers_into<R: Rng>(&self, n: usize, rng: &mut R, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.entries.iter().map(NodeDescriptor::id));
        out.shuffle(rng);
        out.truncate(n);
    }

    /// Selects one random peer from the view.
    #[must_use]
    pub fn random_peer<R: Rng>(&self, rng: &mut R) -> Option<NodeId> {
        self.entries.choose(rng).map(NodeDescriptor::id)
    }

    /// Removes and returns up to `n` random descriptors (used by the Cyclon
    /// shuffle, which sends descriptors away and replaces them with received
    /// ones).
    #[must_use]
    pub fn take_random<R: Rng>(&mut self, n: usize, rng: &mut R) -> Vec<NodeDescriptor> {
        let n = n.min(self.entries.len());
        let mut taken = Vec::with_capacity(n);
        for _ in 0..n {
            let index = rng.gen_range(0..self.entries.len());
            taken.push(self.entries.swap_remove(index));
        }
        taken
    }

    /// Merges received descriptors into the view, Cyclon-style.
    ///
    /// Received descriptors have priority over the descriptors that were sent
    /// away in the same shuffle (`sent`), which are only re-inserted to fill
    /// leftover space. The view never exceeds its capacity.
    pub fn merge_shuffle(&mut self, received: Vec<NodeDescriptor>, sent: &[NodeDescriptor]) {
        for descriptor in received {
            if descriptor.id() == self.owner {
                continue;
            }
            if self.entries.len() < self.capacity || self.contains(descriptor.id()) {
                self.insert(descriptor);
            } else if let Some(slot) = self
                .entries
                .iter()
                .position(|d| sent.iter().any(|s| s.id() == d.id()))
            {
                // Replace one of the entries we just sent away.
                self.entries[slot] = descriptor;
            } else {
                self.evict_oldest();
                self.insert(descriptor);
            }
        }
        // Re-fill with sent descriptors if there is room left.
        for descriptor in sent {
            if self.entries.len() >= self.capacity {
                break;
            }
            self.insert(*descriptor);
        }
    }

    /// Replaces all descriptors by the freshest `capacity` descriptors of the
    /// union of the current view and `incoming` (Newscast-style merge).
    pub fn merge_freshest(&mut self, incoming: &[NodeDescriptor]) {
        let mut best: HashMap<NodeId, NodeDescriptor> = HashMap::new();
        for d in self.entries.iter().copied().chain(incoming.iter().copied()) {
            if d.id() == self.owner {
                continue;
            }
            best.entry(d.id())
                .and_modify(|existing| {
                    if d.is_fresher_than(existing) {
                        *existing = d;
                    }
                })
                .or_insert(d);
        }
        let mut merged: Vec<NodeDescriptor> = best.into_values().collect();
        merged.sort_by_key(|d| (d.age(), d.id()));
        merged.truncate(self.capacity);
        self.entries = merged;
    }

    fn evict_oldest(&mut self) {
        if let Some(oldest) = self.oldest_peer() {
            self.remove(oldest);
        }
    }
}

impl fmt::Display for PartialView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view({} peers of {})", self.entries.len(), self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflasks_types::NodeProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn descriptor(id: u64) -> NodeDescriptor {
        NodeDescriptor::new(NodeId::new(id), NodeProfile::default())
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_is_rejected() {
        let _ = PartialView::new(NodeId::new(0), 0);
    }

    #[test]
    fn insert_respects_capacity_and_self_exclusion() {
        let mut view = PartialView::new(NodeId::new(0), 2);
        assert!(!view.insert(descriptor(0)), "self must be rejected");
        assert!(view.insert(descriptor(1)));
        assert!(view.insert(descriptor(2)));
        assert!(view.insert(descriptor(3)));
        assert_eq!(view.len(), 2);
        assert!(!view.contains(NodeId::new(0)));
    }

    #[test]
    fn insert_keeps_freshest_descriptor_per_node() {
        let mut view = PartialView::new(NodeId::new(0), 4);
        view.insert(descriptor(1).with_age(5));
        assert!(view.insert(descriptor(1).with_age(1)));
        assert_eq!(view.get(NodeId::new(1)).unwrap().age(), 1);
        // An older descriptor never replaces a fresher one.
        assert!(!view.insert(descriptor(1).with_age(9)));
        assert_eq!(view.get(NodeId::new(1)).unwrap().age(), 1);
    }

    #[test]
    fn eviction_removes_the_oldest_entry() {
        let mut view = PartialView::new(NodeId::new(0), 2);
        view.insert(descriptor(1).with_age(9));
        view.insert(descriptor(2).with_age(1));
        view.insert(descriptor(3).with_age(0));
        assert_eq!(view.len(), 2);
        assert!(!view.contains(NodeId::new(1)), "oldest should be evicted");
    }

    #[test]
    fn age_and_expire_drops_stale_descriptors() {
        let mut view = PartialView::new(NodeId::new(0), 4);
        view.insert(descriptor(1).with_age(0));
        view.insert(descriptor(2).with_age(10));
        view.age_and_expire(10);
        assert!(view.contains(NodeId::new(1)));
        assert!(!view.contains(NodeId::new(2)), "descriptor aged past max");
        assert_eq!(view.get(NodeId::new(1)).unwrap().age(), 1);
    }

    #[test]
    fn oldest_peer_is_the_max_age() {
        let mut view = PartialView::new(NodeId::new(0), 4);
        assert_eq!(view.oldest_peer(), None);
        view.insert(descriptor(1).with_age(3));
        view.insert(descriptor(2).with_age(7));
        view.insert(descriptor(3).with_age(5));
        assert_eq!(view.oldest_peer(), Some(NodeId::new(2)));
    }

    #[test]
    fn sampling_returns_distinct_known_peers() {
        let mut view = PartialView::new(NodeId::new(0), 8);
        for i in 1..=8u64 {
            view.insert(descriptor(i));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let sample = view.sample_peers(5, &mut rng);
        assert_eq!(sample.len(), 5);
        let unique: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(unique.len(), 5);
        assert!(sample.iter().all(|p| view.contains(*p)));
        // Asking for more than available returns everything.
        assert_eq!(view.sample_peers(100, &mut rng).len(), 8);
    }

    #[test]
    fn take_random_removes_from_the_view() {
        let mut view = PartialView::new(NodeId::new(0), 8);
        for i in 1..=6u64 {
            view.insert(descriptor(i));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let taken = view.take_random(4, &mut rng);
        assert_eq!(taken.len(), 4);
        assert_eq!(view.len(), 2);
        for d in &taken {
            assert!(!view.contains(d.id()));
        }
    }

    #[test]
    fn merge_shuffle_prefers_received_descriptors() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut view = PartialView::new(NodeId::new(0), 3);
        for i in 1..=3u64 {
            view.insert(descriptor(i));
        }
        let sent = view.take_random(2, &mut rng);
        let received = vec![descriptor(10), descriptor(11)];
        view.merge_shuffle(received, &sent);
        assert!(view.contains(NodeId::new(10)));
        assert!(view.contains(NodeId::new(11)));
        assert!(view.len() <= 3);
    }

    #[test]
    fn merge_shuffle_ignores_owner_and_respects_capacity() {
        let mut view = PartialView::new(NodeId::new(0), 2);
        view.insert(descriptor(1));
        view.insert(descriptor(2));
        view.merge_shuffle(vec![descriptor(0), descriptor(3), descriptor(4)], &[]);
        assert!(!view.contains(NodeId::new(0)));
        assert_eq!(view.len(), 2);
    }

    #[test]
    fn merge_freshest_keeps_youngest_entries() {
        let mut view = PartialView::new(NodeId::new(0), 3);
        view.insert(descriptor(1).with_age(8));
        view.insert(descriptor(2).with_age(2));
        let incoming = vec![
            descriptor(1).with_age(1),
            descriptor(3).with_age(0),
            descriptor(4).with_age(9),
            descriptor(0).with_age(0),
        ];
        view.merge_freshest(&incoming);
        assert_eq!(view.len(), 3);
        assert_eq!(view.get(NodeId::new(1)).unwrap().age(), 1);
        assert!(view.contains(NodeId::new(3)));
        assert!(view.contains(NodeId::new(2)));
        assert!(!view.contains(NodeId::new(4)), "oldest entry must be cut");
        assert!(
            !view.contains(NodeId::new(0)),
            "owner never enters the view"
        );
    }

    #[test]
    fn display_reports_fill_level() {
        let mut view = PartialView::new(NodeId::new(0), 4);
        view.insert(descriptor(1));
        assert_eq!(view.to_string(), "view(1 peers of 4)");
    }
}
