//! The intra-slice view.
//!
//! Once a request has reached a node of its target slice, dissemination
//! continues only among the nodes of that slice (paper §IV-B: "we consider a
//! Peer Sampling Service intra-slice"). The [`SliceView`] is fed with the
//! descriptors observed by the global Peer Sampling Service and keeps only
//! those that advertise the same slice as the local node, giving the request
//! handler a cheap source of intra-slice gossip targets.

use rand::Rng;

use dataflasks_types::{NodeId, SliceId};

use crate::descriptor::NodeDescriptor;
use crate::view::PartialView;

/// A bounded view restricted to peers of the local node's slice.
///
/// # Example
///
/// ```
/// use dataflasks_membership::{NodeDescriptor, SliceView};
/// use dataflasks_types::{NodeId, NodeProfile, SliceId};
///
/// let mut view = SliceView::new(NodeId::new(0), 4);
/// view.set_slice(Some(SliceId::new(2)));
/// view.observe(NodeDescriptor::new(NodeId::new(1), NodeProfile::default()).with_slice(Some(SliceId::new(2))));
/// view.observe(NodeDescriptor::new(NodeId::new(2), NodeProfile::default()).with_slice(Some(SliceId::new(3))));
/// assert_eq!(view.len(), 1); // only same-slice peers are retained
/// ```
#[derive(Debug, Clone)]
pub struct SliceView {
    slice: Option<SliceId>,
    view: PartialView,
}

impl SliceView {
    /// Creates an empty intra-slice view for `owner` holding at most
    /// `capacity` peers.
    #[must_use]
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        Self {
            slice: None,
            view: PartialView::new(owner, capacity),
        }
    }

    /// The slice this view is currently restricted to.
    #[must_use]
    pub fn slice(&self) -> Option<SliceId> {
        self.slice
    }

    /// Number of intra-slice peers currently known.
    #[must_use]
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Returns `true` if no intra-slice peer is known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// Returns `true` if `peer` is a known intra-slice peer.
    #[must_use]
    pub fn contains(&self, peer: NodeId) -> bool {
        self.view.contains(peer)
    }

    /// Identities of all known intra-slice peers.
    #[must_use]
    pub fn peer_ids(&self) -> Vec<NodeId> {
        self.view.peer_ids()
    }

    /// Changes the slice the local node belongs to.
    ///
    /// When the slice changes, previously collected peers are discarded: they
    /// belong to the old slice and keeping them would leak dissemination
    /// outside the new slice.
    pub fn set_slice(&mut self, slice: Option<SliceId>) {
        if self.slice != slice {
            self.slice = slice;
            self.view = PartialView::new(self.view.owner(), self.view.capacity());
        }
    }

    /// Feeds one observed descriptor into the view. Only descriptors
    /// advertising the local slice are retained. Returns `true` if the view
    /// changed.
    pub fn observe(&mut self, descriptor: NodeDescriptor) -> bool {
        match (self.slice, descriptor.slice()) {
            (Some(mine), Some(theirs)) if mine == theirs => self.view.insert(descriptor),
            _ => false,
        }
    }

    /// Feeds every descriptor of an iterator into the view.
    pub fn observe_all<I>(&mut self, descriptors: I)
    where
        I: IntoIterator<Item = NodeDescriptor>,
    {
        for d in descriptors {
            self.observe(d);
        }
    }

    /// Ages the view and expires stale peers.
    pub fn age_and_expire(&mut self, max_age: u32) {
        self.view.age_and_expire(max_age);
    }

    /// Removes a peer (e.g. suspected dead, or observed in another slice).
    pub fn purge(&mut self, peer: NodeId) {
        self.view.remove(peer);
    }

    /// Selects up to `n` distinct random intra-slice peers.
    #[must_use]
    pub fn sample_peers<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<NodeId> {
        self.view.sample_peers(n, rng)
    }

    /// Like [`Self::sample_peers`], but fills a caller-owned buffer so hot
    /// paths can reuse one allocation across calls.
    pub fn sample_peers_into<R: Rng>(&self, n: usize, rng: &mut R, out: &mut Vec<NodeId>) {
        self.view.sample_peers_into(n, rng, out);
    }

    /// Selects one random intra-slice peer.
    #[must_use]
    pub fn random_peer<R: Rng>(&self, rng: &mut R) -> Option<NodeId> {
        self.view.random_peer(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflasks_types::NodeProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn descriptor(id: u64, slice: Option<u32>) -> NodeDescriptor {
        NodeDescriptor::new(NodeId::new(id), NodeProfile::default())
            .with_slice(slice.map(SliceId::new))
    }

    #[test]
    fn only_same_slice_descriptors_are_retained() {
        let mut view = SliceView::new(NodeId::new(0), 8);
        view.set_slice(Some(SliceId::new(1)));
        assert!(view.observe(descriptor(1, Some(1))));
        assert!(!view.observe(descriptor(2, Some(2))));
        assert!(!view.observe(descriptor(3, None)));
        assert_eq!(view.len(), 1);
        assert!(view.contains(NodeId::new(1)));
    }

    #[test]
    fn without_a_slice_nothing_is_retained() {
        let mut view = SliceView::new(NodeId::new(0), 8);
        assert!(!view.observe(descriptor(1, Some(0))));
        assert!(view.is_empty());
    }

    #[test]
    fn changing_slice_clears_the_view() {
        let mut view = SliceView::new(NodeId::new(0), 8);
        view.set_slice(Some(SliceId::new(1)));
        view.observe_all([descriptor(1, Some(1)), descriptor(2, Some(1))]);
        assert_eq!(view.len(), 2);
        view.set_slice(Some(SliceId::new(2)));
        assert!(view.is_empty());
        assert_eq!(view.slice(), Some(SliceId::new(2)));
        // Setting the same slice again must not clear it.
        view.observe(descriptor(3, Some(2)));
        view.set_slice(Some(SliceId::new(2)));
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn sampling_only_returns_slice_peers() {
        let mut view = SliceView::new(NodeId::new(0), 16);
        view.set_slice(Some(SliceId::new(0)));
        for i in 1..=10u64 {
            view.observe(descriptor(i, Some(0)));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let sample = view.sample_peers(4, &mut rng);
        assert_eq!(sample.len(), 4);
        assert!(sample.iter().all(|p| view.contains(*p)));
        assert!(view.random_peer(&mut rng).is_some());
    }

    #[test]
    fn aging_and_purging_work() {
        let mut view = SliceView::new(NodeId::new(0), 8);
        view.set_slice(Some(SliceId::new(0)));
        view.observe(descriptor(1, Some(0)));
        view.observe(descriptor(2, Some(0)));
        view.purge(NodeId::new(1));
        assert!(!view.contains(NodeId::new(1)));
        for _ in 0..25 {
            view.age_and_expire(20);
        }
        assert!(view.is_empty(), "stale peers must eventually expire");
    }

    #[test]
    fn capacity_is_respected() {
        let mut view = SliceView::new(NodeId::new(0), 3);
        view.set_slice(Some(SliceId::new(0)));
        for i in 1..=10u64 {
            view.observe(descriptor(i, Some(0)));
        }
        assert_eq!(view.len(), 3);
        assert_eq!(view.peer_ids().len(), 3);
    }
}
