//! A Newscast-style peer sampling protocol.
//!
//! Newscast (Voulgaris et al.) is a simpler gossip membership protocol than
//! Cyclon: on every round a node picks a random neighbour and both sides
//! exchange their *entire* view plus a fresh descriptor of themselves; each
//! side then keeps the freshest `view_size` descriptors of the union.
//! DataFlasks uses Cyclon by default, but Newscast is provided so that the
//! membership substrate can be compared experimentally (Newscast refreshes
//! faster under churn at the cost of a more skewed in-degree distribution).

use rand::Rng;

use dataflasks_types::{NodeId, NodeProfile, PssConfig, SliceId};

use crate::descriptor::NodeDescriptor;
use crate::view::PartialView;
use crate::PeerSampling;

/// A Newscast exchange payload: the sender's full view plus its own fresh
/// descriptor. The same payload type is used for the request and the reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewscastExchange {
    /// Descriptors advertised by the sender.
    pub descriptors: Vec<NodeDescriptor>,
}

/// State machine of the Newscast protocol for one node.
///
/// # Example
///
/// ```
/// use dataflasks_membership::{NewscastProtocol, NodeDescriptor, PeerSampling};
/// use dataflasks_types::{NodeId, NodeProfile, PssConfig};
/// use rand::SeedableRng;
///
/// let cfg = PssConfig::default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut a = NewscastProtocol::new(NodeId::new(1), cfg);
/// let mut b = NewscastProtocol::new(NodeId::new(2), cfg);
/// a.bootstrap([NodeDescriptor::new(NodeId::new(2), NodeProfile::default())]);
///
/// let (peer, exchange) = a.initiate_exchange(&mut rng).unwrap();
/// let reply = b.handle_exchange(a.local_id(), exchange);
/// a.handle_reply(reply);
/// assert_eq!(peer, NodeId::new(2));
/// assert!(b.view().contains(NodeId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct NewscastProtocol {
    local_id: NodeId,
    config: PssConfig,
    profile: NodeProfile,
    slice: Option<SliceId>,
    view: PartialView,
    exchanges: u64,
}

impl NewscastProtocol {
    /// Creates a Newscast instance for `local_id` with an empty view.
    #[must_use]
    pub fn new(local_id: NodeId, config: PssConfig) -> Self {
        Self {
            local_id,
            config,
            profile: NodeProfile::default(),
            slice: None,
            view: PartialView::new(local_id, config.view_size),
            exchanges: 0,
        }
    }

    /// Sets the profile advertised in the node's own descriptor.
    pub fn set_profile(&mut self, profile: NodeProfile) {
        self.profile = profile;
    }

    /// Sets the slice advertised in the node's own descriptor.
    pub fn set_slice(&mut self, slice: Option<SliceId>) {
        self.slice = slice;
    }

    /// Number of exchanges (initiated plus answered) this node took part in.
    #[must_use]
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Seeds the view with bootstrap contacts.
    pub fn bootstrap<I>(&mut self, contacts: I)
    where
        I: IntoIterator<Item = NodeDescriptor>,
    {
        for contact in contacts {
            self.view.insert(contact);
        }
    }

    /// A fresh descriptor of the local node.
    #[must_use]
    pub fn self_descriptor(&self) -> NodeDescriptor {
        NodeDescriptor::new(self.local_id, self.profile).with_slice(self.slice)
    }

    /// Starts one exchange round: ages the view, picks a random neighbour and
    /// returns the payload to send to it. Returns `None` on an empty view.
    pub fn initiate_exchange<R: Rng>(&mut self, rng: &mut R) -> Option<(NodeId, NewscastExchange)> {
        self.view.age_and_expire(self.config.max_descriptor_age);
        let target = self.view.random_peer(rng)?;
        self.exchanges += 1;
        Some((target, self.payload()))
    }

    /// Handles an exchange initiated by `from`: merges the received
    /// descriptors and returns the reply payload.
    pub fn handle_exchange(
        &mut self,
        from: NodeId,
        exchange: NewscastExchange,
    ) -> NewscastExchange {
        self.exchanges += 1;
        let reply = self.payload();
        self.absorb(from, exchange);
        reply
    }

    /// Handles the reply to an exchange this node initiated.
    pub fn handle_reply(&mut self, reply: NewscastExchange) {
        self.view.merge_freshest(&reply.descriptors);
    }

    /// Drops the descriptor of a suspected-dead peer.
    pub fn purge(&mut self, peer: NodeId) {
        self.view.remove(peer);
    }

    fn payload(&self) -> NewscastExchange {
        let mut descriptors = vec![self.self_descriptor()];
        descriptors.extend(self.view.iter().copied());
        NewscastExchange { descriptors }
    }

    fn absorb(&mut self, from: NodeId, exchange: NewscastExchange) {
        self.view.merge_freshest(&exchange.descriptors);
        // Knowing the initiator keeps the overlay connected even if the merge
        // dropped its descriptor for freshness reasons; a blank placeholder is
        // only added when the initiator is not already known.
        if !self.view.contains(from) {
            self.view
                .insert(NodeDescriptor::new(from, NodeProfile::default()));
        }
    }
}

impl PeerSampling for NewscastProtocol {
    fn local_id(&self) -> NodeId {
        self.local_id
    }

    fn view(&self) -> &PartialView {
        &self.view
    }

    fn view_mut(&mut self) -> &mut PartialView {
        &mut self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn descriptor(id: u64) -> NodeDescriptor {
        NodeDescriptor::new(NodeId::new(id), NodeProfile::default())
    }

    #[test]
    fn exchange_requires_a_non_empty_view() {
        let mut p = NewscastProtocol::new(NodeId::new(0), PssConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(p.initiate_exchange(&mut rng).is_none());
    }

    #[test]
    fn payload_always_contains_fresh_self_descriptor() {
        let mut p = NewscastProtocol::new(NodeId::new(3), PssConfig::default());
        p.bootstrap([descriptor(1)]);
        let mut rng = StdRng::seed_from_u64(0);
        let (_, exchange) = p.initiate_exchange(&mut rng).unwrap();
        assert_eq!(exchange.descriptors[0].id(), NodeId::new(3));
        assert_eq!(exchange.descriptors[0].age(), 0);
    }

    #[test]
    fn both_sides_learn_from_an_exchange() {
        let cfg = PssConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = NewscastProtocol::new(NodeId::new(1), cfg);
        let mut b = NewscastProtocol::new(NodeId::new(2), cfg);
        a.bootstrap([descriptor(2), descriptor(10)]);
        b.bootstrap([descriptor(20)]);
        let (_, exchange) = a.initiate_exchange(&mut rng).unwrap();
        let reply = b.handle_exchange(NodeId::new(1), exchange);
        a.handle_reply(reply);
        assert!(b.view().contains(NodeId::new(1)));
        assert!(b.view().contains(NodeId::new(10)));
        assert!(a.view().contains(NodeId::new(20)));
        assert_eq!(a.exchanges(), 1);
        assert_eq!(b.exchanges(), 1);
    }

    #[test]
    fn views_stay_bounded_over_many_rounds() {
        let cfg = PssConfig {
            view_size: 5,
            ..PssConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let count = 30u64;
        let mut nodes: Vec<NewscastProtocol> = (0..count)
            .map(|i| {
                let mut p = NewscastProtocol::new(NodeId::new(i), cfg);
                p.bootstrap([descriptor((i + 1) % count)]);
                p
            })
            .collect();
        for _round in 0..40 {
            for i in 0..nodes.len() {
                if let Some((target, exchange)) = nodes[i].initiate_exchange(&mut rng) {
                    let from = nodes[i].local_id();
                    let reply = nodes[target.as_u64() as usize].handle_exchange(from, exchange);
                    nodes[i].handle_reply(reply);
                }
            }
        }
        for node in &nodes {
            assert!(node.view().len() <= cfg.view_size);
            assert!(!node.view().is_empty());
            assert!(!node.view().contains(node.local_id()));
        }
    }

    #[test]
    fn purge_removes_peer() {
        let mut p = NewscastProtocol::new(NodeId::new(0), PssConfig::default());
        p.bootstrap([descriptor(1), descriptor(2)]);
        p.purge(NodeId::new(2));
        assert!(!p.view().contains(NodeId::new(2)));
    }

    #[test]
    fn slice_and_profile_are_advertised() {
        let mut p = NewscastProtocol::new(NodeId::new(0), PssConfig::default());
        p.set_profile(NodeProfile::with_capacity(9));
        p.set_slice(Some(SliceId::new(1)));
        let d = p.self_descriptor();
        assert_eq!(d.profile().capacity(), 9);
        assert_eq!(d.slice(), Some(SliceId::new(1)));
    }
}
