//! Node descriptors exchanged by the gossip protocols.

use std::fmt;

use dataflasks_types::{NodeId, NodeProfile, SliceId};

/// A descriptor of a remote node as kept in a partial view and exchanged in
/// gossip messages.
///
/// Besides the node identity and its gossip *age* (number of shuffle rounds
/// since the descriptor was created), DataFlasks descriptors carry the
/// node's locally measured [`NodeProfile`] and the slice the node currently
/// believes it belongs to. Piggybacking these two fields on the membership
/// gossip is what lets the slicing protocol collect attribute samples and the
/// request handler discover intra-slice peers without extra message types.
///
/// # Example
///
/// ```
/// use dataflasks_membership::NodeDescriptor;
/// use dataflasks_types::{NodeId, NodeProfile, SliceId};
///
/// let mut d = NodeDescriptor::new(NodeId::new(4), NodeProfile::with_capacity(500));
/// assert_eq!(d.age(), 0);
/// d.increase_age();
/// assert_eq!(d.age(), 1);
/// let d = d.with_slice(Some(SliceId::new(2)));
/// assert_eq!(d.slice(), Some(SliceId::new(2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDescriptor {
    id: NodeId,
    age: u32,
    profile: NodeProfile,
    slice: Option<SliceId>,
}

impl NodeDescriptor {
    /// Creates a fresh (age zero) descriptor for a node with the given
    /// profile and no known slice.
    #[must_use]
    pub fn new(id: NodeId, profile: NodeProfile) -> Self {
        Self {
            id,
            age: 0,
            profile,
            slice: None,
        }
    }

    /// Identity of the described node.
    #[must_use]
    pub const fn id(&self) -> NodeId {
        self.id
    }

    /// Gossip age of the descriptor, in shuffle rounds.
    #[must_use]
    pub const fn age(&self) -> u32 {
        self.age
    }

    /// Locally measured profile of the described node.
    #[must_use]
    pub const fn profile(&self) -> NodeProfile {
        self.profile
    }

    /// Slice the described node believes it belongs to, if it has decided.
    #[must_use]
    pub const fn slice(&self) -> Option<SliceId> {
        self.slice
    }

    /// Returns a copy of the descriptor with its age reset to zero, used when
    /// a node advertises itself in a shuffle.
    #[must_use]
    pub fn refreshed(mut self) -> Self {
        self.age = 0;
        self
    }

    /// Returns a copy of the descriptor carrying the given slice assignment.
    #[must_use]
    pub fn with_slice(mut self, slice: Option<SliceId>) -> Self {
        self.slice = slice;
        self
    }

    /// Returns a copy of the descriptor carrying the given age.
    #[must_use]
    pub fn with_age(mut self, age: u32) -> Self {
        self.age = age;
        self
    }

    /// Increments the descriptor age by one shuffle round (saturating).
    pub fn increase_age(&mut self) {
        self.age = self.age.saturating_add(1);
    }

    /// Returns `true` if this descriptor is fresher (strictly younger) than
    /// `other`. Only meaningful for descriptors of the same node.
    #[must_use]
    pub fn is_fresher_than(&self, other: &Self) -> bool {
        self.age < other.age
    }
}

impl fmt::Display for NodeDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.slice {
            Some(slice) => write!(
                f,
                "{}(age={}, {}, {})",
                self.id, self.age, self.profile, slice
            ),
            None => write!(f, "{}(age={}, {})", self.id, self.age, self.profile),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_descriptor_is_fresh_and_unsliced() {
        let d = NodeDescriptor::new(NodeId::new(1), NodeProfile::with_capacity(10));
        assert_eq!(d.age(), 0);
        assert_eq!(d.slice(), None);
        assert_eq!(d.profile().capacity(), 10);
    }

    #[test]
    fn age_increments_and_saturates() {
        let mut d =
            NodeDescriptor::new(NodeId::new(1), NodeProfile::default()).with_age(u32::MAX - 1);
        d.increase_age();
        assert_eq!(d.age(), u32::MAX);
        d.increase_age();
        assert_eq!(d.age(), u32::MAX);
    }

    #[test]
    fn refreshed_resets_age_only() {
        let d = NodeDescriptor::new(NodeId::new(1), NodeProfile::with_capacity(3))
            .with_age(9)
            .with_slice(Some(SliceId::new(1)));
        let r = d.refreshed();
        assert_eq!(r.age(), 0);
        assert_eq!(r.slice(), Some(SliceId::new(1)));
        assert_eq!(r.profile().capacity(), 3);
    }

    #[test]
    fn freshness_comparison() {
        let young = NodeDescriptor::new(NodeId::new(1), NodeProfile::default()).with_age(1);
        let old = NodeDescriptor::new(NodeId::new(1), NodeProfile::default()).with_age(5);
        assert!(young.is_fresher_than(&old));
        assert!(!old.is_fresher_than(&young));
        assert!(!young.is_fresher_than(&young));
    }

    #[test]
    fn display_includes_slice_when_known() {
        let d = NodeDescriptor::new(NodeId::new(2), NodeProfile::with_capacity(1))
            .with_slice(Some(SliceId::new(3)));
        assert!(d.to_string().contains("s3"));
        let undecided = NodeDescriptor::new(NodeId::new(2), NodeProfile::with_capacity(1));
        assert!(!undecided.to_string().contains("s3"));
    }
}
