//! Property-based tests for the membership substrate.

use std::collections::HashSet;

use dataflasks_membership::{
    analysis, CyclonProtocol, NewscastProtocol, NodeDescriptor, PartialView, PeerSampling,
};
use dataflasks_types::{NodeId, NodeProfile, PssConfig, SliceId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn descriptor(id: u64, age: u32) -> NodeDescriptor {
    NodeDescriptor::new(NodeId::new(id), NodeProfile::default()).with_age(age)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A partial view never exceeds its capacity, never contains the owner
    /// and never holds two descriptors for the same node, regardless of the
    /// insert sequence.
    #[test]
    fn view_invariants_hold_for_any_insert_sequence(
        capacity in 1usize..16,
        inserts in proptest::collection::vec((0u64..32, 0u32..20), 0..128),
    ) {
        let owner = NodeId::new(0);
        let mut view = PartialView::new(owner, capacity);
        for (id, age) in inserts {
            view.insert(descriptor(id, age));
            prop_assert!(view.len() <= capacity);
            prop_assert!(!view.contains(owner));
            let ids: Vec<_> = view.peer_ids();
            let unique: HashSet<_> = ids.iter().collect();
            prop_assert_eq!(ids.len(), unique.len());
        }
    }

    /// Merging shuffles preserves the same invariants.
    #[test]
    fn merge_shuffle_preserves_invariants(
        capacity in 2usize..12,
        initial in proptest::collection::vec((1u64..32, 0u32..10), 0..12),
        received in proptest::collection::vec((0u64..32, 0u32..10), 0..12),
        seed in any::<u64>(),
    ) {
        let owner = NodeId::new(0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut view = PartialView::new(owner, capacity);
        for (id, age) in initial {
            view.insert(descriptor(id, age));
        }
        let sent = view.take_random(3, &mut rng);
        let received: Vec<_> = received.into_iter().map(|(id, age)| descriptor(id, age)).collect();
        view.merge_shuffle(received, &sent);
        prop_assert!(view.len() <= capacity);
        prop_assert!(!view.contains(owner));
        let ids = view.peer_ids();
        let unique: HashSet<_> = ids.iter().collect();
        prop_assert_eq!(ids.len(), unique.len());
    }

    /// After any number of Cyclon rounds over a randomly bootstrapped system,
    /// every view respects its bound, excludes its owner, and the overlay
    /// remains connected from node 0.
    #[test]
    fn cyclon_rounds_preserve_invariants(
        nodes in 4u64..24,
        rounds in 1usize..12,
        seed in any::<u64>(),
    ) {
        let cfg = PssConfig { view_size: 6, shuffle_length: 4, ..PssConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut protocols: Vec<CyclonProtocol> = (0..nodes)
            .map(|i| {
                let mut p = CyclonProtocol::new(NodeId::new(i), cfg);
                p.bootstrap([descriptor((i + 1) % nodes, 0)]);
                p
            })
            .collect();
        for _ in 0..rounds {
            for i in 0..protocols.len() {
                if let Some((target, request)) = protocols[i].initiate_shuffle(&mut rng) {
                    let from = protocols[i].local_id();
                    let response =
                        protocols[target.as_u64() as usize].handle_request(from, request, &mut rng);
                    protocols[i].handle_response(response);
                }
            }
        }
        let views: Vec<PartialView> = protocols.iter().map(|p| p.view().clone()).collect();
        for (i, view) in views.iter().enumerate() {
            prop_assert!(view.len() <= cfg.view_size);
            prop_assert!(!view.contains(NodeId::new(i as u64)));
            prop_assert!(!view.is_empty());
        }
        prop_assert_eq!(analysis::reachable_from(&views, NodeId::new(0)), nodes as usize);
    }

    /// Newscast exchanges keep views bounded and owner-free as well.
    #[test]
    fn newscast_rounds_preserve_invariants(
        nodes in 4u64..20,
        rounds in 1usize..10,
        seed in any::<u64>(),
    ) {
        let cfg = PssConfig { view_size: 5, ..PssConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut protocols: Vec<NewscastProtocol> = (0..nodes)
            .map(|i| {
                let mut p = NewscastProtocol::new(NodeId::new(i), cfg);
                p.bootstrap([descriptor((i + 1) % nodes, 0)]);
                p
            })
            .collect();
        for _ in 0..rounds {
            for i in 0..protocols.len() {
                if let Some((target, exchange)) = protocols[i].initiate_exchange(&mut rng) {
                    let from = protocols[i].local_id();
                    let reply =
                        protocols[target.as_u64() as usize].handle_exchange(from, exchange);
                    protocols[i].handle_reply(reply);
                }
            }
        }
        for (i, p) in protocols.iter().enumerate() {
            prop_assert!(p.view().len() <= cfg.view_size);
            prop_assert!(!p.view().contains(NodeId::new(i as u64)));
        }
    }

    /// Advertised slices survive the shuffle path: a descriptor carrying a
    /// slice keeps it when inserted into other views.
    #[test]
    fn slices_survive_view_insertion(slice in 0u32..64, id in 1u64..100) {
        let mut view = PartialView::new(NodeId::new(0), 8);
        let d = NodeDescriptor::new(NodeId::new(id), NodeProfile::default())
            .with_slice(Some(SliceId::new(slice)));
        view.insert(d);
        prop_assert_eq!(view.get(NodeId::new(id)).unwrap().slice(), Some(SliceId::new(slice)));
    }
}
