//! The cross-backend invariant checker.
//!
//! Fault injection is only useful if something audits the cluster
//! afterwards. The [`InvariantChecker`] consumes plain observables —
//! replication factors, alive counts, reject counters — after each
//! nemesis phase and records every violation of the four invariants the
//! robustness suite enforces. It holds no backend handles, so the same
//! checker audits the simulator and the socket cluster alike.

use std::fmt;

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which nemesis phase the violation was observed after.
    pub phase: String,
    /// Short name of the violated invariant.
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.phase, self.invariant, self.detail)
    }
}

/// Collects invariant checks over a nemesis run; zero recorded violations
/// at the end is the pass criterion.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    violations: Vec<InvariantViolation>,
    checks: u64,
}

impl InvariantChecker {
    /// Creates an empty checker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Invariant 1 — replication bounds: a stored key's replica count must
    /// stay within `1..=alive_slice_population` (a key cannot be on more
    /// nodes than its slice has alive, and a key the cluster claims to
    /// hold must be somewhere).
    pub fn check_replication_bounds(
        &mut self,
        phase: &str,
        key: &str,
        replicas: usize,
        alive_slice_population: usize,
    ) {
        self.checks += 1;
        if replicas == 0 || replicas > alive_slice_population {
            self.record(
                phase,
                "replication-bounds",
                format!("key {key}: {replicas} replicas outside 1..={alive_slice_population}"),
            );
        }
    }

    /// Invariant 2 — acked durability: an acknowledged put may never
    /// vanish while a majority of its slice is alive. Call with the number
    /// of alive replicas holding the key and whether the slice majority
    /// survived the phase.
    pub fn check_acked_durability(
        &mut self,
        phase: &str,
        key: &str,
        alive_replicas: usize,
        slice_majority_alive: bool,
    ) {
        self.checks += 1;
        if slice_majority_alive && alive_replicas == 0 {
            self.record(
                phase,
                "acked-durability",
                format!("acked key {key} lost with its slice majority alive"),
            );
        }
    }

    /// Invariant 3 — bounded convergence: after a heal, all live replicas
    /// must converge within the anti-entropy round budget. Pass the rounds
    /// it actually took (`None` if the run gave up).
    pub fn check_convergence(&mut self, phase: &str, rounds_used: Option<usize>, budget: usize) {
        self.checks += 1;
        match rounds_used {
            Some(rounds) if rounds <= budget => {}
            Some(rounds) => self.record(
                phase,
                "bounded-convergence",
                format!("converged in {rounds} anti-entropy rounds, budget {budget}"),
            ),
            None => self.record(
                phase,
                "bounded-convergence",
                format!("did not converge within budget {budget}"),
            ),
        }
    }

    /// Invariant 4 — corruption accounting: every injected frame
    /// corruption must surface as exactly one transport-level wire reject
    /// (and therefore never as a panic or a silent mis-decode).
    pub fn check_corruption_accounting(&mut self, phase: &str, injected: u64, wire_rejects: u64) {
        self.checks += 1;
        if injected != wire_rejects {
            self.record(
                phase,
                "corruption-accounting",
                format!("{injected} corruptions injected, {wire_rejects} wire rejects observed"),
            );
        }
    }

    /// Number of checks run so far (violating or not).
    #[must_use]
    pub fn checks_run(&self) -> u64 {
        self.checks
    }

    /// The violations recorded so far.
    #[must_use]
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Returns `true` if every check passed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One line per violation, for logs and bench output.
    #[must_use]
    pub fn report(&self) -> String {
        self.violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn record(&mut self, phase: &str, invariant: &'static str, detail: String) {
        self.violations.push(InvariantViolation {
            phase: phase.to_string(),
            invariant,
            detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_record_checks_but_no_violations() {
        let mut checker = InvariantChecker::new();
        checker.check_replication_bounds("phase-0", "k1", 3, 5);
        checker.check_acked_durability("phase-0", "k1", 2, true);
        checker.check_convergence("phase-0", Some(4), 10);
        checker.check_corruption_accounting("phase-0", 8, 8);
        assert!(checker.is_clean());
        assert_eq!(checker.checks_run(), 4);
        assert!(checker.report().is_empty());
    }

    #[test]
    fn each_invariant_detects_its_violation() {
        let mut checker = InvariantChecker::new();
        checker.check_replication_bounds("p", "k", 0, 5);
        checker.check_replication_bounds("p", "k", 6, 5);
        checker.check_acked_durability("p", "k", 0, true);
        checker.check_acked_durability("p", "k", 0, false); // minority alive: allowed
        checker.check_convergence("p", Some(11), 10);
        checker.check_convergence("p", None, 10);
        checker.check_corruption_accounting("p", 8, 7);
        assert_eq!(checker.violations().len(), 6);
        assert_eq!(checker.checks_run(), 7);
        let report = checker.report();
        assert!(report.contains("replication-bounds"));
        assert!(report.contains("acked-durability"));
        assert!(report.contains("bounded-convergence"));
        assert!(report.contains("corruption-accounting"));
    }
}
