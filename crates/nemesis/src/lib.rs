//! Seeded nemesis fault schedules and the cross-backend invariant checker.
//!
//! The paper's headline claim is that DataFlasks keeps data available and
//! converges under massive churn and hostile networks. This crate turns
//! that claim into a testable subsystem:
//!
//! * [`NemesisSchedule`] — a pure function of `(NemesisSpec, seed)` (the
//!   same idiom as the workload crate's `OpenLoopSchedule`) emitting timed
//!   fault operations: partitions and heals, asymmetric link cuts,
//!   per-link loss/duplication/reordering windows, latency-distribution
//!   swaps, churn storms (the paper's headline regime) and frame
//!   corruption budgets.
//! * [`NemesisOp::apply_to_plan`] — the backend-agnostic half of applying
//!   an op: everything expressible as a
//!   [`FaultPlan`](dataflasks_core::fault::FaultPlan) verdict replays
//!   identically on the simulator and the threaded/async/socket runtimes.
//!   Reordering, latency swaps and churn storms are applied by each
//!   backend's own driver (the simulator can replay all of them; real
//!   runtimes replay the physically possible subset).
//! * [`InvariantChecker`] — consumes cluster observables after each
//!   nemesis phase and records violations of the four invariants the
//!   robustness suite audits: replication bounds, acked-put durability on
//!   majority-alive slices, convergence within a bounded number of
//!   anti-entropy rounds after heal, and corruption accounting
//!   (injected corruptions must surface as `wire_rejects`, never panics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invariant;
pub mod schedule;

pub use invariant::{InvariantChecker, InvariantViolation};
pub use schedule::{LatencyShape, NemesisEvent, NemesisOp, NemesisSchedule, NemesisSpec};
