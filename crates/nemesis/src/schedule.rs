//! Seeded fault schedules: a pure function of `(NemesisSpec, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataflasks_core::fault::FaultPlan;
use dataflasks_types::{Duration, NodeId};

/// Which latency distribution the network should serve.
///
/// The simulator's `FaultyNetwork` interposer implements each shape
/// deterministically; real runtimes cannot swap their physical latency and
/// skip these ops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyShape {
    /// Restore the backend's configured baseline latency.
    Baseline,
    /// Uniform latency in `[min, max]`.
    Uniform {
        /// Minimum one-way latency.
        min: Duration,
        /// Maximum one-way latency.
        max: Duration,
    },
    /// Log-normal latency: heavy-tailed around a median, the shape WAN
    /// measurements actually exhibit.
    LogNormal {
        /// Median one-way latency.
        median: Duration,
        /// Log-space standard deviation; `0.5` is a mild tail, `1.5` a
        /// violent one.
        sigma: f64,
    },
    /// Mostly-fast latency with occasional spikes (e.g. a congested or
    /// GC-pausing hop).
    Spike {
        /// Latency of the common case.
        base: Duration,
        /// Latency of a spike.
        spike: Duration,
        /// Probability a given delivery hits the spike.
        spike_probability: f64,
    },
}

/// One timed fault operation.
#[derive(Debug, Clone, PartialEq)]
pub enum NemesisOp {
    /// Impose a partition: nodes in different groups cannot exchange
    /// transport units. Replayable on every backend.
    Partition {
        /// The partition's groups; nodes absent from every group are
        /// unaffected.
        groups: Vec<Vec<NodeId>>,
    },
    /// Lift the partition and every blocked directed link.
    Heal,
    /// Block one directed link (`from → to`); the reverse stays open.
    /// Replayable on every backend.
    AsymmetricLink {
        /// Sender whose transport units are refused.
        from: NodeId,
        /// Destination the refusals apply to.
        to: NodeId,
    },
    /// Drop matching transport units with probability `p`. `p = 0` closes
    /// the window. Replayable on every backend; the cross-backend parity
    /// subset restricts `p` to `{0, 1}`.
    Loss {
        /// Directed links the loss applies to; `None` means every link.
        links: Option<Vec<(NodeId, NodeId)>>,
        /// Drop probability in `[0, 1]`.
        p: f64,
    },
    /// Deliver matching transport units twice with probability `p`.
    /// `p = 0` closes the window.
    Duplicate {
        /// Directed links the duplication applies to; `None` means every
        /// link.
        links: Option<Vec<(NodeId, NodeId)>>,
        /// Duplication probability in `[0, 1]`.
        p: f64,
    },
    /// Delay deliveries by up to `max_delay` with probability `p`,
    /// reordering them against undelayed traffic. Simulator only.
    Reorder {
        /// Probability a delivery is delayed.
        p: f64,
        /// Upper bound of the extra delay.
        max_delay: Duration,
    },
    /// Swap the network's latency distribution. Simulator only.
    LatencySwap(LatencyShape),
    /// The paper's headline regime: crash and join nodes concurrently over
    /// a window. Counts are absolute (computed from the spec's rates at
    /// generation time).
    ChurnStorm {
        /// Nodes crashed across the window.
        crashes: usize,
        /// Fresh nodes joined across the window.
        joins: usize,
        /// Length of the storm.
        duration: Duration,
    },
    /// Arm `count` single-bit frame corruptions at the transport boundary.
    /// Byte transports (socket, async) only; each corrupted frame must
    /// surface as exactly one `wire_rejects` — never a panic.
    CorruptFrames {
        /// Number of outbound frames to corrupt.
        count: u64,
    },
}

impl NemesisOp {
    /// Applies the backend-agnostic half of this op to a
    /// [`FaultPlan`]: partitions, heals, blocked links, loss and
    /// duplication windows, and corruption budgets. Returns `false` for
    /// ops a plan cannot express ([`NemesisOp::Reorder`],
    /// [`NemesisOp::LatencySwap`], [`NemesisOp::ChurnStorm`]) — those are
    /// each backend driver's job.
    pub fn apply_to_plan(&self, plan: &FaultPlan) -> bool {
        match self {
            Self::Partition { groups } => plan.set_partition(groups),
            Self::Heal => plan.heal(),
            Self::AsymmetricLink { from, to } => plan.block_link(*from, *to),
            Self::Loss { links, p } => plan.set_loss(links.clone(), *p),
            Self::Duplicate { links, p } => plan.set_duplicate(links.clone(), *p),
            Self::CorruptFrames { count } => plan.arm_corruption(*count),
            Self::Reorder { .. } | Self::LatencySwap(_) | Self::ChurnStorm { .. } => return false,
        }
        true
    }
}

/// One scheduled fault: when, and what.
#[derive(Debug, Clone, PartialEq)]
pub struct NemesisEvent {
    /// Offset from the start of the scenario.
    pub at: Duration,
    /// The fault operation.
    pub op: NemesisOp,
}

/// Parameters of a nemesis run: which fault families are enabled and how
/// hard they hit. Families with a zero knob are skipped; the generator
/// round-robins over the enabled families so every configured fault kind
/// appears within the first cycle of phases.
#[derive(Debug, Clone, PartialEq)]
pub struct NemesisSpec {
    /// Number of nodes at scenario start (ids `0..nodes`).
    pub nodes: usize,
    /// Number of fault phases to emit.
    pub phases: usize,
    /// Quiet warm-up before the first fault.
    pub warmup: Duration,
    /// Quiet gap between a phase's close and the next phase's open — the
    /// window the invariant checker observes convergence in.
    pub phase_gap: Duration,
    /// Number of partition groups (`0` disables partitions; `2` is a
    /// classic split-brain, `3` a three-way split).
    pub partition_groups: u32,
    /// How long partitions (and asymmetric link cuts) hold before healing.
    pub partition_hold: Duration,
    /// Directed links cut per asymmetric-link phase (`0` disables).
    pub asymmetric_links: usize,
    /// Loss probability of loss windows (`0` disables).
    pub loss_probability: f64,
    /// Directed links a loss window targets (`0` = every link).
    pub loss_links: usize,
    /// Duplication probability of duplication windows (`0` disables).
    pub duplicate_probability: f64,
    /// Reorder probability of reorder windows (`0` disables; sim only).
    pub reorder_probability: f64,
    /// Maximum extra delay a reordered delivery suffers.
    pub reorder_max_delay: Duration,
    /// Emit latency-distribution swap phases (sim only).
    pub latency_swaps: bool,
    /// How long loss/duplication/reorder/latency windows hold.
    pub link_hold: Duration,
    /// Churn storms: nodes crashed per second (`0` together with the join
    /// rate disables storms).
    pub churn_kill_rate: f64,
    /// Churn storms: fresh nodes joined per second.
    pub churn_join_rate: f64,
    /// Length of each churn storm.
    pub churn_hold: Duration,
    /// Frames corrupted per corruption phase (`0` disables; socket/async
    /// backends only).
    pub corrupt_frames: u64,
}

impl NemesisSpec {
    /// The acceptance scenario: churn storms plus partition/heal cycles,
    /// nothing else — the paper's headline regime with a split-brain on
    /// top. Kill/join rates scale with the cluster (1% of nodes per
    /// second) so the storm is equally violent at every size.
    #[must_use]
    pub fn churn_and_partition(nodes: usize) -> Self {
        let rate = (nodes as f64 / 100.0).max(1.0);
        Self {
            nodes,
            phases: 2,
            warmup: Duration::from_secs(30),
            phase_gap: Duration::from_secs(60),
            partition_groups: 2,
            partition_hold: Duration::from_secs(30),
            asymmetric_links: 0,
            loss_probability: 0.0,
            loss_links: 0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_max_delay: Duration::ZERO,
            latency_swaps: false,
            link_hold: Duration::from_secs(30),
            churn_kill_rate: rate,
            churn_join_rate: rate,
            churn_hold: Duration::from_secs(20),
            corrupt_frames: 0,
        }
    }

    /// Every fault family enabled at moderate intensity — the kitchen-sink
    /// spec the simulator-determinism tests replay.
    #[must_use]
    pub fn hostile(nodes: usize) -> Self {
        let mut spec = Self::churn_and_partition(nodes);
        spec.phases = 8;
        spec.asymmetric_links = 2;
        spec.loss_probability = 0.3;
        spec.duplicate_probability = 0.2;
        spec.reorder_probability = 0.25;
        spec.reorder_max_delay = Duration::from_millis(400);
        spec.latency_swaps = true;
        spec.corrupt_frames = 16;
        spec
    }
}

/// Which fault family a phase exercises; derived from the spec's knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Partition,
    Asymmetric,
    Loss,
    Duplicate,
    Reorder,
    Latency,
    Churn,
    Corrupt,
}

/// A fully materialised nemesis schedule: the deterministic product of a
/// [`NemesisSpec`] and a seed.
///
/// # Example
///
/// ```
/// use dataflasks_nemesis::{NemesisSchedule, NemesisSpec};
///
/// let spec = NemesisSpec::hostile(50);
/// let schedule = NemesisSchedule::generate(&spec, 7);
/// assert!(!schedule.events().is_empty());
/// // Same inputs, same schedule — byte for byte.
/// assert_eq!(schedule, NemesisSchedule::generate(&spec, 7));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NemesisSchedule {
    spec: NemesisSpec,
    events: Vec<NemesisEvent>,
}

impl NemesisSchedule {
    /// Materialises the schedule: round-robins over the spec's enabled
    /// fault families, opening each fault at the running clock and closing
    /// it (heal, probability-zero window, baseline latency) after its
    /// hold, with the phase gap between phases. Event times are monotone
    /// by construction.
    ///
    /// # Panics
    ///
    /// Panics if the spec has fewer than two nodes, zero phases, or no
    /// enabled fault family.
    #[must_use]
    pub fn generate(spec: &NemesisSpec, seed: u64) -> Self {
        assert!(spec.nodes >= 2, "nemesis needs at least two nodes");
        assert!(spec.phases > 0, "nemesis needs at least one phase");
        let families = enabled_families(spec);
        assert!(!families.is_empty(), "nemesis spec enables no fault family");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut clock = spec.warmup;
        for phase in 0..spec.phases {
            let family = families[phase % families.len()];
            match family {
                Family::Partition => {
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::Partition {
                            groups: random_groups(spec.nodes, spec.partition_groups, &mut rng),
                        },
                    });
                    clock = after(clock, spec.partition_hold);
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::Heal,
                    });
                }
                Family::Asymmetric => {
                    for _ in 0..spec.asymmetric_links {
                        let (from, to) = random_link(spec.nodes, &mut rng);
                        events.push(NemesisEvent {
                            at: clock,
                            op: NemesisOp::AsymmetricLink { from, to },
                        });
                    }
                    clock = after(clock, spec.partition_hold);
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::Heal,
                    });
                }
                Family::Loss => {
                    let links = if spec.loss_links == 0 {
                        None
                    } else {
                        Some(
                            (0..spec.loss_links)
                                .map(|_| random_link(spec.nodes, &mut rng))
                                .collect(),
                        )
                    };
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::Loss {
                            links,
                            p: spec.loss_probability,
                        },
                    });
                    clock = after(clock, spec.link_hold);
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::Loss {
                            links: None,
                            p: 0.0,
                        },
                    });
                }
                Family::Duplicate => {
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::Duplicate {
                            links: None,
                            p: spec.duplicate_probability,
                        },
                    });
                    clock = after(clock, spec.link_hold);
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::Duplicate {
                            links: None,
                            p: 0.0,
                        },
                    });
                }
                Family::Reorder => {
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::Reorder {
                            p: spec.reorder_probability,
                            max_delay: spec.reorder_max_delay,
                        },
                    });
                    clock = after(clock, spec.link_hold);
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::Reorder {
                            p: 0.0,
                            max_delay: Duration::ZERO,
                        },
                    });
                }
                Family::Latency => {
                    let shape = if rng.gen::<bool>() {
                        LatencyShape::LogNormal {
                            median: Duration::from_millis(80),
                            sigma: 1.0,
                        }
                    } else {
                        LatencyShape::Spike {
                            base: Duration::from_millis(20),
                            spike: Duration::from_millis(500),
                            spike_probability: 0.05,
                        }
                    };
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::LatencySwap(shape),
                    });
                    clock = after(clock, spec.link_hold);
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::LatencySwap(LatencyShape::Baseline),
                    });
                }
                Family::Churn => {
                    let secs = spec.churn_hold.as_millis() as f64 / 1_000.0;
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::ChurnStorm {
                            crashes: (spec.churn_kill_rate * secs).round() as usize,
                            joins: (spec.churn_join_rate * secs).round() as usize,
                            duration: spec.churn_hold,
                        },
                    });
                    clock = after(clock, spec.churn_hold);
                }
                Family::Corrupt => {
                    events.push(NemesisEvent {
                        at: clock,
                        op: NemesisOp::CorruptFrames {
                            count: spec.corrupt_frames,
                        },
                    });
                    clock = after(clock, spec.link_hold);
                }
            }
            clock = after(clock, spec.phase_gap);
        }
        Self {
            spec: spec.clone(),
            events,
        }
    }

    /// The spec the schedule was generated from.
    #[must_use]
    pub fn spec(&self) -> &NemesisSpec {
        &self.spec
    }

    /// The scheduled fault operations, in time order.
    #[must_use]
    pub fn events(&self) -> &[NemesisEvent] {
        &self.events
    }

    /// Offset of the last event plus one phase gap — run the scenario at
    /// least this long so the final phase's convergence window completes.
    #[must_use]
    pub fn span(&self) -> Duration {
        let last = self.events.last().map_or(Duration::ZERO, |e| e.at);
        after(last, self.spec.phase_gap)
    }
}

fn enabled_families(spec: &NemesisSpec) -> Vec<Family> {
    let mut families = Vec::new();
    if spec.churn_kill_rate > 0.0 || spec.churn_join_rate > 0.0 {
        families.push(Family::Churn);
    }
    if spec.partition_groups >= 2 {
        families.push(Family::Partition);
    }
    if spec.asymmetric_links > 0 {
        families.push(Family::Asymmetric);
    }
    if spec.loss_probability > 0.0 {
        families.push(Family::Loss);
    }
    if spec.duplicate_probability > 0.0 {
        families.push(Family::Duplicate);
    }
    if spec.reorder_probability > 0.0 {
        families.push(Family::Reorder);
    }
    if spec.latency_swaps {
        families.push(Family::Latency);
    }
    if spec.corrupt_frames > 0 {
        families.push(Family::Corrupt);
    }
    families
}

fn after(clock: Duration, hold: Duration) -> Duration {
    Duration::from_millis(clock.as_millis() + hold.as_millis())
}

/// Splits nodes `0..nodes` into `groups` non-empty groups: the first
/// `groups` nodes seed one group each, the rest land uniformly at random.
fn random_groups(nodes: usize, groups: u32, rng: &mut StdRng) -> Vec<Vec<NodeId>> {
    let groups = (groups as usize).clamp(2, nodes);
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); groups];
    for node in 0..nodes {
        let g = if node < groups {
            node
        } else {
            rng.gen_range(0..groups)
        };
        out[g].push(NodeId::new(node as u64));
    }
    out
}

fn random_link(nodes: usize, rng: &mut StdRng) -> (NodeId, NodeId) {
    let from = rng.gen_range(0..nodes);
    let mut to = rng.gen_range(0..nodes - 1);
    if to >= from {
        to += 1;
    }
    (NodeId::new(from as u64), NodeId::new(to as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflasks_core::fault::LinkVerdict;
    use proptest::prelude::*;

    #[test]
    fn round_robin_covers_every_enabled_family() {
        let spec = NemesisSpec::hostile(40);
        let schedule = NemesisSchedule::generate(&spec, 3);
        let ops = schedule.events();
        assert!(ops
            .iter()
            .any(|e| matches!(e.op, NemesisOp::Partition { .. })));
        assert!(ops.iter().any(|e| matches!(e.op, NemesisOp::Heal)));
        assert!(ops
            .iter()
            .any(|e| matches!(e.op, NemesisOp::AsymmetricLink { .. })));
        assert!(ops
            .iter()
            .any(|e| matches!(e.op, NemesisOp::Loss { p, .. } if p > 0.0)));
        assert!(ops
            .iter()
            .any(|e| matches!(e.op, NemesisOp::Duplicate { p, .. } if p > 0.0)));
        assert!(ops
            .iter()
            .any(|e| matches!(e.op, NemesisOp::Reorder { p, .. } if p > 0.0)));
        assert!(ops
            .iter()
            .any(|e| matches!(e.op, NemesisOp::LatencySwap(_))));
        assert!(ops
            .iter()
            .any(|e| matches!(e.op, NemesisOp::ChurnStorm { .. })));
        assert!(ops
            .iter()
            .any(|e| matches!(e.op, NemesisOp::CorruptFrames { .. })));
    }

    #[test]
    fn partition_groups_are_nonempty_and_cover_every_node() {
        let spec = NemesisSpec::churn_and_partition(25);
        let schedule = NemesisSchedule::generate(&spec, 9);
        let groups = schedule
            .events()
            .iter()
            .find_map(|e| match &e.op {
                NemesisOp::Partition { groups } => Some(groups.clone()),
                _ => None,
            })
            .expect("spec emits a partition");
        assert!(groups.iter().all(|g| !g.is_empty()));
        let mut members: Vec<_> = groups.iter().flatten().map(|id| id.as_u64()).collect();
        members.sort_unstable();
        assert_eq!(members, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn churn_storm_counts_follow_the_rates() {
        let mut spec = NemesisSpec::churn_and_partition(1_000);
        spec.churn_hold = Duration::from_secs(20);
        let schedule = NemesisSchedule::generate(&spec, 1);
        let (crashes, joins) = schedule
            .events()
            .iter()
            .find_map(|e| match e.op {
                NemesisOp::ChurnStorm { crashes, joins, .. } => Some((crashes, joins)),
                _ => None,
            })
            .expect("spec emits a churn storm");
        // 1% of 1000 nodes per second for 20 s.
        assert_eq!(crashes, 200);
        assert_eq!(joins, 200);
    }

    #[test]
    fn plan_application_covers_the_replayable_subset() {
        let plan = FaultPlan::new();
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        assert!(NemesisOp::Partition {
            groups: vec![vec![a], vec![b]]
        }
        .apply_to_plan(&plan));
        assert_eq!(plan.link_verdict(a, b), LinkVerdict::DropPartition);
        assert!(NemesisOp::Heal.apply_to_plan(&plan));
        assert_eq!(plan.link_verdict(a, b), LinkVerdict::Deliver);
        assert!(NemesisOp::CorruptFrames { count: 2 }.apply_to_plan(&plan));
        assert!(plan.should_corrupt());
        assert!(!NemesisOp::Reorder {
            p: 0.5,
            max_delay: Duration::from_millis(10)
        }
        .apply_to_plan(&plan));
        assert!(!NemesisOp::LatencySwap(LatencyShape::Baseline).apply_to_plan(&plan));
        assert!(!NemesisOp::ChurnStorm {
            crashes: 1,
            joins: 1,
            duration: Duration::from_secs(1)
        }
        .apply_to_plan(&plan));
    }

    fn vary(spec_bits: (u8, u8, u8)) -> NemesisSpec {
        let (nodes, phases, knobs) = spec_bits;
        let mut spec = NemesisSpec::hostile(4 + nodes as usize % 60);
        spec.phases = 1 + phases as usize % 9;
        if knobs & 1 != 0 {
            spec.loss_links = 3;
        }
        if knobs & 2 != 0 {
            spec.latency_swaps = false;
        }
        if knobs & 4 != 0 {
            spec.loss_probability = 0.6;
        }
        if knobs & 8 != 0 {
            spec.churn_kill_rate = 0.0;
            spec.churn_join_rate = 0.0;
        }
        spec
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn same_seed_replays_byte_identically(bits in (0u8..255, 0u8..255, 0u8..16), seed in 0u64..1_000_000) {
            let spec = vary(bits);
            let first = NemesisSchedule::generate(&spec, seed);
            let second = NemesisSchedule::generate(&spec, seed);
            prop_assert_eq!(first, second);
        }

        #[test]
        fn event_times_are_monotone(bits in (0u8..255, 0u8..255, 0u8..16), seed in 0u64..1_000_000) {
            let schedule = NemesisSchedule::generate(&vary(bits), seed);
            let events = schedule.events();
            prop_assert!(!events.is_empty());
            prop_assert!(events
                .windows(2)
                .all(|w| w[0].at.as_millis() <= w[1].at.as_millis()));
            prop_assert!(schedule.span().as_millis() >= events.last().unwrap().at.as_millis());
        }

        #[test]
        fn empirical_loss_and_duplicate_rates_match_the_spec(
            loss in 0.1f64..0.9,
            dup in 0.1f64..0.9,
            seed in 0u64..1_000_000,
        ) {
            let plan = FaultPlan::new();
            plan.set_seed(seed);
            // Disjoint links keep the two estimates independent.
            let loss_link = (NodeId::new(0), NodeId::new(1));
            let dup_link = (NodeId::new(2), NodeId::new(3));
            NemesisOp::Loss { links: Some(vec![loss_link]), p: loss }.apply_to_plan(&plan);
            NemesisOp::Duplicate { links: Some(vec![dup_link]), p: dup }.apply_to_plan(&plan);
            let trials = 20_000u32;
            let mut dropped = 0u32;
            let mut duplicated = 0u32;
            for _ in 0..trials {
                if plan.link_verdict(loss_link.0, loss_link.1) == LinkVerdict::DropLoss {
                    dropped += 1;
                }
                if plan.link_verdict(dup_link.0, dup_link.1) == LinkVerdict::Duplicate {
                    duplicated += 1;
                }
            }
            let loss_rate = f64::from(dropped) / f64::from(trials);
            let dup_rate = f64::from(duplicated) / f64::from(trials);
            prop_assert!((loss_rate - loss).abs() < 0.03, "loss {} vs {}", loss_rate, loss);
            prop_assert!((dup_rate - dup).abs() < 0.03, "dup {} vs {}", dup_rate, dup);
        }
    }
}
