//! Property-based tests for the open-loop schedule and the key
//! distributions behind it.

use dataflasks_workload::{KeyDistribution, OpenLoopSchedule, OpenLoopSpec, ZipfianGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec(rate: f64, operations: usize, key_space: usize, theta: f64) -> OpenLoopSpec {
    OpenLoopSpec {
        offered_ops_per_s: rate,
        operations,
        read_fraction: 0.5,
        key_space,
        distribution: KeyDistribution::Zipfian { theta },
        value_size: 32,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The schedule is a pure function of (spec, seed): the same inputs
    /// produce a byte-identical operation sequence — arrivals, keys, kinds,
    /// versions and payloads — and a different seed produces a different
    /// one.
    #[test]
    fn same_seed_same_schedule(
        seed in 0u64..1_000_000,
        rate in 100.0f64..50_000.0,
        operations in 1usize..500,
        key_space in 1usize..300,
    ) {
        let spec = spec(rate, operations, key_space, 0.99);
        let a = OpenLoopSchedule::generate(&spec, seed);
        let b = OpenLoopSchedule::generate(&spec, seed);
        // Structural equality first, then the byte-level render: an Eq
        // impl bug must not mask a drifting Debug representation (the
        // form harnesses log and diff).
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        if operations >= 16 {
            let other = OpenLoopSchedule::generate(&spec, seed ^ 0x9E37_79B9);
            prop_assert_ne!(a, other);
        }
    }

    /// Arrival offsets never decrease, and their mean gap matches the
    /// offered rate within Poisson noise.
    #[test]
    fn arrivals_are_monotone_at_the_offered_rate(
        seed in 0u64..1_000_000,
        rate in 500.0f64..20_000.0,
    ) {
        let operations = 20_000;
        let schedule = OpenLoopSchedule::generate(&spec(rate, operations, 100, 0.99), seed);
        let ops = schedule.ops();
        prop_assert!(ops.windows(2).all(|w| w[0].arrival_micros <= w[1].arrival_micros));
        let mean_gap = schedule.span_micros() as f64 / operations as f64;
        let expected = 1e6 / rate;
        prop_assert!(
            (mean_gap - expected).abs() / expected < 0.1,
            "mean gap {mean_gap} vs expected {expected}"
        );
    }

    /// The Zipfian sampler's empirical head frequency matches the analytic
    /// head probability of its theta, for any theta in the supported range.
    #[test]
    fn zipfian_skew_matches_theta(
        seed in 0u64..1_000_000,
        theta in 0.5f64..0.99,
    ) {
        let items = 500u64;
        let zipf = ZipfianGenerator::new(items, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = 30_000;
        let head = (0..samples).filter(|_| zipf.next_value(&mut rng) == 0).count();
        let head_fraction = head as f64 / samples as f64;
        let expected = zipf.head_probability();
        prop_assert!(
            (head_fraction - expected).abs() < 0.02 + expected * 0.25,
            "head fraction {head_fraction} vs analytic {expected} (theta {theta})"
        );
    }

    /// The schedule's key sequence follows the same skew: with Zipfian
    /// popularity, record 0 appears about head_probability of the time.
    #[test]
    fn schedule_keys_follow_the_distribution(seed in 0u64..1_000_000) {
        let theta = 0.99;
        let key_space = 200usize;
        let operations = 10_000;
        let schedule =
            OpenLoopSchedule::generate(&spec(5_000.0, operations, key_space, theta), seed);
        let head = schedule.ops().iter().filter(|op| op.record == 0).count();
        let head_fraction = head as f64 / operations as f64;
        let expected = ZipfianGenerator::new(key_space as u64, theta).head_probability();
        prop_assert!(
            (head_fraction - expected).abs() < 0.02 + expected * 0.25,
            "head fraction {head_fraction} vs analytic {expected}"
        );
    }
}
