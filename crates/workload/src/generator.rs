//! The workload generator: turns a [`WorkloadSpec`] into operation streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataflasks_types::{Key, Value, Version};

use crate::distribution::{KeyDistribution, ZipfianGenerator};
use crate::spec::WorkloadSpec;

/// The kind of a generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperationKind {
    /// Insert a brand new record (a put of version 1).
    Insert,
    /// Overwrite an existing record (a put with the next version).
    Update,
    /// Read a record (a get of the latest version).
    Read,
}

/// One generated benchmark operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// What the client should do.
    pub kind: OperationKind,
    /// YCSB-style user key (`user0`, `user1`, …).
    pub user_key: String,
    /// The key hashed onto the DataFlasks key space.
    pub key: Key,
    /// Version to write (puts) or `None` to read the latest version.
    pub version: Option<Version>,
    /// Payload for puts; empty for reads.
    pub value: Value,
}

impl Operation {
    /// Returns `true` for operations that write (insert or update).
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self.kind, OperationKind::Insert | OperationKind::Update)
    }
}

/// A deterministic YCSB-style operation generator.
///
/// The generator tracks, per record, the last version it wrote so that
/// updates carry strictly increasing versions — the total order on puts that
/// DataFlasks assumes is provided by the upper layer.
///
/// # Example
///
/// ```
/// use dataflasks_workload::{OperationKind, WorkloadGenerator, WorkloadSpec};
///
/// let mut generator = WorkloadGenerator::new(WorkloadSpec::workload_a(50, 20), 7);
/// let load: Vec<_> = generator.load_phase().collect();
/// assert_eq!(load.len(), 50);
/// let run: Vec<_> = generator.transaction_phase().collect();
/// assert_eq!(run.len(), 20);
/// assert!(run.iter().all(|op| matches!(op.kind, OperationKind::Read | OperationKind::Update)));
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
    rng: StdRng,
    zipfian: Option<ZipfianGenerator>,
    /// Number of records inserted so far (load + transaction inserts).
    records_inserted: usize,
    /// Per-record version counters, indexed by record number.
    versions: Vec<u64>,
}

impl WorkloadGenerator {
    /// Creates a generator for `spec`, seeded for reproducibility.
    #[must_use]
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let zipfian = match spec.key_distribution {
            KeyDistribution::Zipfian { theta } => Some(ZipfianGenerator::new(
                spec.record_count.max(1) as u64,
                theta,
            )),
            _ => None,
        };
        Self {
            rng: StdRng::seed_from_u64(seed),
            zipfian,
            records_inserted: 0,
            versions: Vec::with_capacity(spec.record_count),
            spec,
        }
    }

    /// The specification this generator follows.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Number of records inserted so far.
    #[must_use]
    pub fn records_inserted(&self) -> usize {
        self.records_inserted
    }

    /// The YCSB-style user key of record number `record`.
    #[must_use]
    pub fn user_key(record: usize) -> String {
        format!("user{record}")
    }

    /// Generates the load phase: one insert per record, in record order.
    pub fn load_phase(&mut self) -> impl Iterator<Item = Operation> + '_ {
        let count = self.spec.record_count;
        (0..count).map(move |_| self.next_insert())
    }

    /// Generates the transaction phase: `operation_count` operations drawn
    /// from the configured mix and key distribution.
    pub fn transaction_phase(&mut self) -> impl Iterator<Item = Operation> + '_ {
        let count = self.spec.operation_count;
        (0..count).map(move |i| self.next_transaction(i))
    }

    fn next_insert(&mut self) -> Operation {
        let record = self.records_inserted;
        self.records_inserted += 1;
        self.versions.push(1);
        let user_key = Self::user_key(record);
        Operation {
            kind: OperationKind::Insert,
            key: Key::from_user_key(&user_key),
            user_key,
            version: Some(Version::new(1)),
            value: Value::filled(self.spec.value_size, (record % 251) as u8),
        }
    }

    fn next_transaction(&mut self, sequence: usize) -> Operation {
        let total = self.spec.total_weight();
        if total <= 0.0 || self.records_inserted == 0 {
            return self.next_insert();
        }
        let draw: f64 = self.rng.gen::<f64>() * total;
        if draw < self.spec.insert_proportion {
            self.next_insert()
        } else if draw < self.spec.insert_proportion + self.spec.update_proportion {
            let record = self.choose_record(sequence);
            self.versions[record] += 1;
            let user_key = Self::user_key(record);
            Operation {
                kind: OperationKind::Update,
                key: Key::from_user_key(&user_key),
                user_key,
                version: Some(Version::new(self.versions[record])),
                value: Value::filled(self.spec.value_size, (record % 251) as u8),
            }
        } else {
            let record = self.choose_record(sequence);
            let user_key = Self::user_key(record);
            Operation {
                kind: OperationKind::Read,
                key: Key::from_user_key(&user_key),
                user_key,
                version: None,
                value: Value::default(),
            }
        }
    }

    fn choose_record(&mut self, sequence: usize) -> usize {
        let population = self.records_inserted.max(1);
        match self.spec.key_distribution {
            KeyDistribution::Uniform => self.rng.gen_range(0..population),
            KeyDistribution::Zipfian { .. } => {
                let zipf = self
                    .zipfian
                    .as_ref()
                    .expect("zipfian generator initialised for zipfian spec");
                (zipf.next_value(&mut self.rng) as usize).min(population - 1)
            }
            KeyDistribution::Latest => {
                // Popularity decays with distance from the most recent insert.
                let zipf = ZipfianGenerator::new(population as u64, 0.99);
                let offset = zipf.next_value(&mut self.rng) as usize;
                population - 1 - offset.min(population - 1)
            }
            KeyDistribution::Sequential => sequence % population,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn load_phase_inserts_every_record_once() {
        let mut generator = WorkloadGenerator::new(WorkloadSpec::write_only(64, 0), 1);
        let ops: Vec<Operation> = generator.load_phase().collect();
        assert_eq!(ops.len(), 64);
        let unique: std::collections::HashSet<_> = ops.iter().map(|o| o.key).collect();
        assert_eq!(unique.len(), 64, "every record gets a distinct key");
        assert!(ops.iter().all(|o| o.kind == OperationKind::Insert));
        assert!(ops.iter().all(|o| o.version == Some(Version::new(1))));
        assert!(ops.iter().all(|o| o.value.len() == 128));
        assert_eq!(generator.records_inserted(), 64);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = WorkloadGenerator::new(WorkloadSpec::workload_a(100, 50), 9);
        let mut b = WorkloadGenerator::new(WorkloadSpec::workload_a(100, 50), 9);
        let _ = a.load_phase().count();
        let _ = b.load_phase().count();
        let ops_a: Vec<Operation> = a.transaction_phase().collect();
        let ops_b: Vec<Operation> = b.transaction_phase().collect();
        assert_eq!(ops_a, ops_b);
        let mut c = WorkloadGenerator::new(WorkloadSpec::workload_a(100, 50), 10);
        let _ = c.load_phase().count();
        let ops_c: Vec<Operation> = c.transaction_phase().collect();
        assert_ne!(ops_a, ops_c, "different seeds should differ");
    }

    #[test]
    fn transaction_mix_respects_proportions_roughly() {
        let mut generator = WorkloadGenerator::new(WorkloadSpec::workload_b(200, 2_000), 3);
        let _ = generator.load_phase().count();
        let ops: Vec<Operation> = generator.transaction_phase().collect();
        let reads = ops.iter().filter(|o| o.kind == OperationKind::Read).count();
        let updates = ops
            .iter()
            .filter(|o| o.kind == OperationKind::Update)
            .count();
        assert_eq!(reads + updates, ops.len());
        let read_fraction = reads as f64 / ops.len() as f64;
        assert!(
            (0.90..=0.99).contains(&read_fraction),
            "read fraction {read_fraction}"
        );
    }

    #[test]
    fn updates_carry_strictly_increasing_versions() {
        let spec = WorkloadSpec {
            read_proportion: 0.0,
            update_proportion: 1.0,
            insert_proportion: 0.0,
            ..WorkloadSpec::workload_a(10, 500)
        };
        let mut generator = WorkloadGenerator::new(spec, 4);
        let _ = generator.load_phase().count();
        let mut last_version: HashMap<Key, u64> = HashMap::new();
        for op in generator.transaction_phase() {
            assert_eq!(op.kind, OperationKind::Update);
            let version = op.version.unwrap().as_u64();
            let previous = last_version.insert(op.key, version).unwrap_or(1);
            assert!(version > previous, "version must increase per key");
        }
    }

    #[test]
    fn write_only_transaction_phase_keeps_inserting_new_records() {
        let mut generator = WorkloadGenerator::new(WorkloadSpec::write_only(10, 30), 5);
        let _ = generator.load_phase().count();
        let ops: Vec<Operation> = generator.transaction_phase().collect();
        assert_eq!(ops.len(), 30);
        assert!(ops.iter().all(|o| o.kind == OperationKind::Insert));
        assert_eq!(generator.records_inserted(), 40);
    }

    #[test]
    fn zipfian_mix_concentrates_on_popular_records() {
        let mut generator = WorkloadGenerator::new(WorkloadSpec::workload_c(500, 5_000), 6);
        let _ = generator.load_phase().count();
        let mut counts: HashMap<String, usize> = HashMap::new();
        for op in generator.transaction_phase() {
            *counts.entry(op.user_key).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let mean = 5_000.0 / 500.0;
        assert!(max as f64 > mean * 5.0, "hottest key only {max} accesses");
    }

    #[test]
    fn sequential_distribution_round_robins() {
        let spec =
            WorkloadSpec::workload_c(4, 8).with_key_distribution(KeyDistribution::Sequential);
        let mut generator = WorkloadGenerator::new(spec, 7);
        let _ = generator.load_phase().count();
        let ops: Vec<Operation> = generator.transaction_phase().collect();
        let keys: Vec<String> = ops.into_iter().map(|o| o.user_key).collect();
        assert_eq!(keys[0], "user0");
        assert_eq!(keys[3], "user3");
        assert_eq!(keys[4], "user0");
    }

    #[test]
    fn latest_distribution_prefers_recent_records() {
        let spec = WorkloadSpec::workload_d(200, 2_000);
        let mut generator = WorkloadGenerator::new(spec, 8);
        let _ = generator.load_phase().count();
        let mut recent = 0usize;
        let mut total_reads = 0usize;
        for op in generator.transaction_phase() {
            if op.kind == OperationKind::Read {
                total_reads += 1;
                let record: usize = op.user_key.trim_start_matches("user").parse().unwrap();
                if record >= 150 {
                    recent += 1;
                }
            }
        }
        assert!(total_reads > 0);
        let fraction = recent as f64 / total_reads as f64;
        assert!(fraction > 0.5, "recent-record fraction {fraction}");
    }

    #[test]
    fn is_write_classifies_operations() {
        let mut generator = WorkloadGenerator::new(WorkloadSpec::write_only(1, 0), 1);
        let op = generator.load_phase().next().unwrap();
        assert!(op.is_write());
        let read = Operation {
            kind: OperationKind::Read,
            user_key: "user0".into(),
            key: Key::from_user_key("user0"),
            version: None,
            value: Value::default(),
        };
        assert!(!read.is_write());
    }
}
