//! YCSB-style workload generation for DataFlasks experiments.
//!
//! The paper evaluates DataFlasks by running the YCSB cloud-storage benchmark
//! against it ("We ran YCSB configured for a write only workload"). This
//! crate reproduces the relevant parts of YCSB as a deterministic workload
//! generator:
//!
//! * [`WorkloadSpec`] — the benchmark parameters (record count, operation
//!   count, operation mix, key distribution, value size), with presets for
//!   the YCSB core workloads A–C and for the write-only configuration used
//!   in the paper,
//! * [`KeyDistribution`] — uniform, Zipfian and latest request distributions,
//! * [`WorkloadGenerator`] — a seeded iterator of [`Operation`]s: first the
//!   load phase (inserting every record), then the transaction phase drawing
//!   operations from the configured mix.
//!
//! # Example
//!
//! ```
//! use dataflasks_workload::{Operation, OperationKind, WorkloadGenerator, WorkloadSpec};
//!
//! let spec = WorkloadSpec::write_only(100, 100);
//! let mut generator = WorkloadGenerator::new(spec, 42);
//! let ops: Vec<Operation> = generator.load_phase().collect();
//! assert_eq!(ops.len(), 100);
//! assert!(ops.iter().all(|op| op.kind == OperationKind::Insert));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod generator;
pub mod openloop;
pub mod spec;

pub use distribution::{KeyDistribution, ZipfianGenerator};
pub use generator::{Operation, OperationKind, WorkloadGenerator};
pub use openloop::{OpenLoopOp, OpenLoopSchedule, OpenLoopSpec};
pub use spec::WorkloadSpec;
