//! Open-loop load generation: a deterministic arrival schedule at a
//! configured offered rate.
//!
//! The closed-loop [`WorkloadGenerator`] submits
//! its next operation only after the previous one completed, so a slow
//! server silently slows the *client* down and every latency number it
//! produces is a round-trip time, never a capacity measurement. Open-loop
//! load inverts the coupling: operations arrive on a schedule fixed *before
//! the run* (a seeded Poisson process at `offered_ops_per_s`), and each
//! operation's latency is measured from its **scheduled arrival time** —
//! an operation that had to wait behind a stalled predecessor is charged
//! that wait. This is the standard correction for coordinated omission.
//!
//! The schedule is a pure function of `(spec, seed)`: the same inputs
//! produce a byte-identical operation sequence (arrival times, keys, kinds,
//! versions, payloads), so sweeps over offered load replay exactly the same
//! per-operation work and rows differ only in pacing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataflasks_types::{Key, Value, Version};

use crate::distribution::{KeyDistribution, ZipfianGenerator};
use crate::generator::{OperationKind, WorkloadGenerator};

/// Parameters of an open-loop run: how fast operations arrive, how many,
/// and what they do.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopSpec {
    /// Offered load: mean arrival rate of the Poisson schedule, in
    /// operations per second.
    pub offered_ops_per_s: f64,
    /// Number of operations in the schedule.
    pub operations: usize,
    /// Fraction of operations that are reads in `[0, 1]`; the rest are
    /// version-increment writes.
    pub read_fraction: f64,
    /// Number of records addressed. The schedule assumes records
    /// `0..key_space` were preloaded at version 1, so its writes start at
    /// version 2.
    pub key_space: usize,
    /// How keys are picked (uniform, Zipfian, latest, sequential).
    pub distribution: KeyDistribution,
    /// Payload size of writes, in bytes.
    pub value_size: usize,
}

impl OpenLoopSpec {
    /// A read-mostly preset (95% reads, Zipfian 0.99 — YCSB workload B's
    /// mix) at the given rate.
    #[must_use]
    pub fn read_mostly(offered_ops_per_s: f64, operations: usize, key_space: usize) -> Self {
        Self {
            offered_ops_per_s,
            operations,
            read_fraction: 0.95,
            key_space,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            value_size: 128,
        }
    }
}

/// One scheduled operation of an open-loop run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenLoopOp {
    /// When the operation arrives, in microseconds from the start of the
    /// run. Latency is measured from this instant, not from submission.
    pub arrival_micros: u64,
    /// [`OperationKind::Read`] or [`OperationKind::Update`].
    pub kind: OperationKind,
    /// Record number the operation addresses (`0..key_space`).
    pub record: usize,
    /// The record's key on the DataFlasks key space.
    pub key: Key,
    /// Version to write; `None` for reads (latest).
    pub version: Option<Version>,
    /// Payload for writes; empty for reads.
    pub value: Value,
}

impl OpenLoopOp {
    /// Returns `true` for write operations.
    #[must_use]
    pub fn is_write(&self) -> bool {
        self.kind == OperationKind::Update
    }
}

/// A fully materialised open-loop schedule: the deterministic product of an
/// [`OpenLoopSpec`] and a seed.
///
/// # Example
///
/// ```
/// use dataflasks_workload::{OpenLoopSchedule, OpenLoopSpec};
///
/// let spec = OpenLoopSpec::read_mostly(1000.0, 100, 50);
/// let schedule = OpenLoopSchedule::generate(&spec, 7);
/// assert_eq!(schedule.ops().len(), 100);
/// // Same inputs, same schedule — byte for byte.
/// assert_eq!(schedule, OpenLoopSchedule::generate(&spec, 7));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopSchedule {
    spec: OpenLoopSpec,
    ops: Vec<OpenLoopOp>,
}

impl OpenLoopSchedule {
    /// Materialises the schedule for `spec`: Poisson arrivals at the offered
    /// rate, keys from the configured distribution, reads and writes
    /// interleaved by the read fraction, write versions strictly increasing
    /// per record (starting at 2, after the preload's version 1).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite, the key space is
    /// empty, or the read fraction is outside `[0, 1]`.
    #[must_use]
    pub fn generate(spec: &OpenLoopSpec, seed: u64) -> Self {
        assert!(
            spec.offered_ops_per_s.is_finite() && spec.offered_ops_per_s > 0.0,
            "offered rate must be positive, got {}",
            spec.offered_ops_per_s
        );
        assert!(spec.key_space > 0, "open-loop schedule needs records");
        assert!(
            (0.0..=1.0).contains(&spec.read_fraction),
            "read fraction must be in [0, 1], got {}",
            spec.read_fraction
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let zipfian = match spec.distribution {
            KeyDistribution::Zipfian { theta } => {
                Some(ZipfianGenerator::new(spec.key_space as u64, theta))
            }
            KeyDistribution::Latest => Some(ZipfianGenerator::new(spec.key_space as u64, 0.99)),
            KeyDistribution::Uniform | KeyDistribution::Sequential => None,
        };
        let mean_gap_micros = 1_000_000.0 / spec.offered_ops_per_s;
        let mut clock_micros = 0.0f64;
        let mut versions = vec![1u64; spec.key_space];
        let mut ops = Vec::with_capacity(spec.operations);
        for sequence in 0..spec.operations {
            // Exponential inter-arrival times make the schedule a Poisson
            // process; `1 - u` keeps ln's argument away from zero.
            let u: f64 = rng.gen();
            clock_micros += -mean_gap_micros * (1.0 - u).ln();
            let record = match spec.distribution {
                KeyDistribution::Uniform => rng.gen_range(0..spec.key_space),
                KeyDistribution::Zipfian { .. } => {
                    let zipf = zipfian.as_ref().expect("zipfian initialised");
                    (zipf.next_value(&mut rng) as usize).min(spec.key_space - 1)
                }
                KeyDistribution::Latest => {
                    // Popularity decays with distance from the newest record.
                    let zipf = zipfian.as_ref().expect("zipfian initialised");
                    let offset = (zipf.next_value(&mut rng) as usize).min(spec.key_space - 1);
                    spec.key_space - 1 - offset
                }
                KeyDistribution::Sequential => sequence % spec.key_space,
            };
            let user_key = WorkloadGenerator::user_key(record);
            let key = Key::from_user_key(&user_key);
            let is_read = rng.gen::<f64>() < spec.read_fraction;
            let op = if is_read {
                OpenLoopOp {
                    arrival_micros: clock_micros as u64,
                    kind: OperationKind::Read,
                    record,
                    key,
                    version: None,
                    value: Value::default(),
                }
            } else {
                versions[record] += 1;
                OpenLoopOp {
                    arrival_micros: clock_micros as u64,
                    kind: OperationKind::Update,
                    record,
                    key,
                    version: Some(Version::new(versions[record])),
                    value: Value::filled(spec.value_size, (record % 251) as u8),
                }
            };
            ops.push(op);
        }
        Self {
            spec: spec.clone(),
            ops,
        }
    }

    /// The spec the schedule was generated from.
    #[must_use]
    pub fn spec(&self) -> &OpenLoopSpec {
        &self.spec
    }

    /// The scheduled operations, in arrival order.
    #[must_use]
    pub fn ops(&self) -> &[OpenLoopOp] {
        &self.ops
    }

    /// Scheduled duration of the run: the last arrival offset, in
    /// microseconds.
    #[must_use]
    pub fn span_micros(&self) -> u64 {
        self.ops.last().map_or(0, |op| op.arrival_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate: f64, operations: usize) -> OpenLoopSpec {
        OpenLoopSpec {
            offered_ops_per_s: rate,
            operations,
            read_fraction: 0.5,
            key_space: 200,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            value_size: 64,
        }
    }

    #[test]
    fn arrivals_are_monotone_and_match_the_offered_rate() {
        let schedule = OpenLoopSchedule::generate(&spec(10_000.0, 20_000), 3);
        let ops = schedule.ops();
        assert!(ops
            .windows(2)
            .all(|w| w[0].arrival_micros <= w[1].arrival_micros));
        // 20k arrivals at 10k/s should span ~2 s; Poisson noise at this
        // sample size stays well within ±10%.
        let span_s = schedule.span_micros() as f64 / 1e6;
        assert!((1.8..=2.2).contains(&span_s), "span {span_s}");
    }

    #[test]
    fn writes_version_strictly_per_record_and_reads_carry_none() {
        let schedule = OpenLoopSchedule::generate(&spec(5_000.0, 5_000), 11);
        let mut last_version = vec![1u64; 200];
        for op in schedule.ops() {
            match op.kind {
                OperationKind::Read => {
                    assert!(op.version.is_none());
                    assert!(op.value.is_empty());
                }
                OperationKind::Update => {
                    let v = op.version.unwrap().as_u64();
                    assert_eq!(v, last_version[op.record] + 1);
                    last_version[op.record] = v;
                    assert_eq!(op.value.len(), 64);
                }
                OperationKind::Insert => panic!("open-loop schedules never insert"),
            }
        }
    }

    #[test]
    fn read_fraction_is_respected_roughly() {
        let schedule = OpenLoopSchedule::generate(&spec(5_000.0, 10_000), 17);
        let reads = schedule
            .ops()
            .iter()
            .filter(|op| op.kind == OperationKind::Read)
            .count();
        let fraction = reads as f64 / 10_000.0;
        assert!(
            (0.47..=0.53).contains(&fraction),
            "read fraction {fraction}"
        );
    }

    #[test]
    fn sequential_and_uniform_distributions_cover_the_key_space() {
        let mut sequential = spec(1_000.0, 400);
        sequential.distribution = KeyDistribution::Sequential;
        let schedule = OpenLoopSchedule::generate(&sequential, 1);
        for (i, op) in schedule.ops().iter().enumerate() {
            assert_eq!(op.record, i % 200);
        }
        let mut uniform = spec(1_000.0, 4_000);
        uniform.distribution = KeyDistribution::Uniform;
        let schedule = OpenLoopSchedule::generate(&uniform, 1);
        let distinct: std::collections::HashSet<_> =
            schedule.ops().iter().map(|op| op.record).collect();
        assert!(distinct.len() > 150, "uniform covered {}", distinct.len());
    }

    #[test]
    fn latest_distribution_prefers_the_newest_records() {
        let mut latest = spec(1_000.0, 4_000);
        latest.distribution = KeyDistribution::Latest;
        let schedule = OpenLoopSchedule::generate(&latest, 5);
        let newest_decile = schedule.ops().iter().filter(|op| op.record >= 180).count();
        assert!(
            newest_decile as f64 / 4_000.0 > 0.5,
            "newest decile got {newest_decile}"
        );
    }
}
