//! Workload specifications (the equivalent of YCSB workload property files).

use crate::distribution::KeyDistribution;

/// Parameters of a benchmark workload.
///
/// Proportions are normalised at generation time, so they only need to be
/// relative weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of records inserted by the load phase.
    pub record_count: usize,
    /// Number of operations issued by the transaction phase.
    pub operation_count: usize,
    /// Relative weight of read operations in the transaction phase.
    pub read_proportion: f64,
    /// Relative weight of update (overwrite) operations.
    pub update_proportion: f64,
    /// Relative weight of insert (new record) operations.
    pub insert_proportion: f64,
    /// How keys are chosen in the transaction phase.
    pub key_distribution: KeyDistribution,
    /// Payload size of written values, in bytes.
    pub value_size: usize,
}

impl WorkloadSpec {
    /// The write-only workload used by the paper's evaluation: a pure load
    /// phase inserting `record_count` records (the transaction phase issues
    /// `operation_count` additional inserts of new records).
    #[must_use]
    pub fn write_only(record_count: usize, operation_count: usize) -> Self {
        Self {
            record_count,
            operation_count,
            read_proportion: 0.0,
            update_proportion: 0.0,
            insert_proportion: 1.0,
            key_distribution: KeyDistribution::Uniform,
            value_size: 128,
        }
    }

    /// YCSB workload A: update heavy (50% reads, 50% updates, Zipfian keys).
    #[must_use]
    pub fn workload_a(record_count: usize, operation_count: usize) -> Self {
        Self {
            record_count,
            operation_count,
            read_proportion: 0.5,
            update_proportion: 0.5,
            insert_proportion: 0.0,
            key_distribution: KeyDistribution::Zipfian { theta: 0.99 },
            value_size: 128,
        }
    }

    /// YCSB workload B: read mostly (95% reads, 5% updates, Zipfian keys).
    #[must_use]
    pub fn workload_b(record_count: usize, operation_count: usize) -> Self {
        Self {
            read_proportion: 0.95,
            update_proportion: 0.05,
            ..Self::workload_a(record_count, operation_count)
        }
    }

    /// YCSB workload C: read only (100% reads, Zipfian keys).
    #[must_use]
    pub fn workload_c(record_count: usize, operation_count: usize) -> Self {
        Self {
            read_proportion: 1.0,
            update_proportion: 0.0,
            ..Self::workload_a(record_count, operation_count)
        }
    }

    /// YCSB workload D: read latest (95% reads over recently inserted keys,
    /// 5% inserts).
    #[must_use]
    pub fn workload_d(record_count: usize, operation_count: usize) -> Self {
        Self {
            record_count,
            operation_count,
            read_proportion: 0.95,
            update_proportion: 0.0,
            insert_proportion: 0.05,
            key_distribution: KeyDistribution::Latest,
            value_size: 128,
        }
    }

    /// Changes the written-value size.
    #[must_use]
    pub fn with_value_size(mut self, value_size: usize) -> Self {
        self.value_size = value_size;
        self
    }

    /// Changes the key distribution of the transaction phase.
    #[must_use]
    pub fn with_key_distribution(mut self, distribution: KeyDistribution) -> Self {
        self.key_distribution = distribution;
        self
    }

    /// Sum of the proportion weights (used for normalisation).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.read_proportion + self.update_proportion + self.insert_proportion
    }
}

impl Default for WorkloadSpec {
    /// The paper's configuration: a write-only load of 1000 records.
    fn default() -> Self {
        Self::write_only(1_000, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_only_is_pure_inserts() {
        let spec = WorkloadSpec::write_only(10, 5);
        assert_eq!(spec.read_proportion, 0.0);
        assert_eq!(spec.update_proportion, 0.0);
        assert_eq!(spec.insert_proportion, 1.0);
        assert_eq!(spec.record_count, 10);
        assert_eq!(spec.operation_count, 5);
    }

    #[test]
    fn core_workload_mixes_match_ycsb() {
        let a = WorkloadSpec::workload_a(1, 1);
        assert_eq!(a.read_proportion, 0.5);
        assert_eq!(a.update_proportion, 0.5);
        let b = WorkloadSpec::workload_b(1, 1);
        assert_eq!(b.read_proportion, 0.95);
        let c = WorkloadSpec::workload_c(1, 1);
        assert_eq!(c.read_proportion, 1.0);
        assert_eq!(c.update_proportion, 0.0);
        let d = WorkloadSpec::workload_d(1, 1);
        assert_eq!(d.insert_proportion, 0.05);
        assert_eq!(d.key_distribution, KeyDistribution::Latest);
    }

    #[test]
    fn builder_style_modifiers() {
        let spec = WorkloadSpec::write_only(10, 0)
            .with_value_size(1024)
            .with_key_distribution(KeyDistribution::Zipfian { theta: 0.8 });
        assert_eq!(spec.value_size, 1024);
        assert_eq!(
            spec.key_distribution,
            KeyDistribution::Zipfian { theta: 0.8 }
        );
    }

    #[test]
    fn total_weight_sums_proportions() {
        let a = WorkloadSpec::workload_a(1, 1);
        assert!((a.total_weight() - 1.0).abs() < 1e-9);
        let default = WorkloadSpec::default();
        assert!((default.total_weight() - 1.0).abs() < 1e-9);
    }
}
