//! Request key distributions (uniform, Zipfian, latest).

use rand::Rng;

/// How the transaction phase picks the records it operates on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every record is equally likely.
    Uniform,
    /// Zipfian popularity: a small set of records receives most operations.
    /// `theta` is the skew parameter (YCSB uses 0.99).
    Zipfian {
        /// Skew parameter in `(0, 1)`; larger is more skewed.
        theta: f64,
    },
    /// Recently inserted records are the most popular (YCSB workload D).
    Latest,
    /// Records are visited in insertion order, wrapping around.
    Sequential,
}

/// A Zipfian-distributed integer generator over `0..n`, following the
/// rejection-free formula used by YCSB (Gray et al., "Quickly generating
/// billion-record synthetic databases").
///
/// # Example
///
/// ```
/// use dataflasks_workload::ZipfianGenerator;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let zipf = ZipfianGenerator::new(1000, 0.99);
/// let sample = zipf.next_value(&mut rng);
/// assert!(sample < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    items: u64,
    theta: f64,
    zeta_n: f64,
    zeta_two: f64,
    alpha: f64,
    eta: f64,
}

impl ZipfianGenerator {
    /// Creates a generator over `0..items` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero or `theta` is not in `(0, 1)`.
    #[must_use]
    pub fn new(items: u64, theta: f64) -> Self {
        assert!(items > 0, "zipfian needs a non-empty item set");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipfian skew must be in (0, 1), got {theta}"
        );
        let zeta_n = Self::zeta(items, theta);
        let zeta_two = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta_two / zeta_n);
        Self {
            items,
            theta,
            zeta_n,
            zeta_two,
            alpha,
            eta,
        }
    }

    /// Number of items the generator draws from.
    #[must_use]
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Draws the next Zipfian-distributed value in `0..items` (0 is the most
    /// popular item).
    pub fn next_value<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let value =
            (self.items as f64 * (self.eta.mul_add(u, 1.0 - self.eta)).powf(self.alpha)) as u64;
        value.min(self.items - 1)
    }

    /// The generalized harmonic number `H_{n,theta}`.
    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Fraction of the probability mass held by the single most popular item.
    #[must_use]
    pub fn head_probability(&self) -> f64 {
        1.0 / self.zeta_n
    }

    /// The zeta constant over two items (exposed for diagnostics).
    #[must_use]
    pub fn zeta_two(&self) -> f64 {
        self.zeta_two
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "non-empty item set")]
    fn zero_items_is_rejected() {
        let _ = ZipfianGenerator::new(0, 0.99);
    }

    #[test]
    #[should_panic(expected = "skew must be in (0, 1)")]
    fn invalid_theta_is_rejected() {
        let _ = ZipfianGenerator::new(10, 1.5);
    }

    #[test]
    fn values_stay_in_range() {
        let zipf = ZipfianGenerator::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            assert!(zipf.next_value(&mut rng) < 100);
        }
        assert_eq!(zipf.items(), 100);
    }

    #[test]
    fn distribution_is_skewed_towards_small_values() {
        let zipf = ZipfianGenerator::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        let samples = 20_000;
        let mut head = 0usize;
        let mut top_decile = 0usize;
        for _ in 0..samples {
            let v = zipf.next_value(&mut rng);
            if v == 0 {
                head += 1;
            }
            if v < 100 {
                top_decile += 1;
            }
        }
        let head_fraction = head as f64 / samples as f64;
        let decile_fraction = top_decile as f64 / samples as f64;
        // Item 0 should receive far more than the uniform share (0.1%).
        assert!(head_fraction > 0.05, "head fraction {head_fraction}");
        // The most popular 10% of items should receive the majority of traffic.
        assert!(decile_fraction > 0.5, "decile fraction {decile_fraction}");
        // And the analytic head probability should roughly match.
        assert!((head_fraction - zipf.head_probability()).abs() < 0.05);
    }

    #[test]
    fn uniform_vs_zipfian_variants_are_distinct() {
        assert_ne!(
            KeyDistribution::Uniform,
            KeyDistribution::Zipfian { theta: 0.99 }
        );
        assert_ne!(KeyDistribution::Latest, KeyDistribution::Sequential);
    }

    #[test]
    fn zeta_two_is_positive_and_below_zeta_n() {
        let zipf = ZipfianGenerator::new(50, 0.9);
        assert!(zipf.zeta_two() > 1.0);
        assert!(zipf.zeta_two() < ZipfianGenerator::zeta(50, 0.9));
    }
}
