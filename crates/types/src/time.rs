//! Virtual time used by the protocols and the discrete-event simulator.
//!
//! DataFlasks protocols are driven by periodic timers (peer-sampling shuffle,
//! slicing gossip, anti-entropy) and never read a wall clock directly: the
//! environment — simulator or threaded runtime — passes the current time into
//! every event handler. This keeps protocol code deterministic and makes the
//! simulated experiments reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of virtual time, in milliseconds.
///
/// # Example
///
/// ```
/// use dataflasks_types::Duration;
///
/// let period = Duration::from_secs(2);
/// assert_eq!(period.as_millis(), 2_000);
/// assert_eq!(period * 3, Duration::from_millis(6_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Self = Self(0);

    /// Creates a duration from a number of milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis)
    }

    /// Creates a duration from a number of seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000)
    }

    /// Returns the duration in milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the duration in (truncated) whole seconds.
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating subtraction of two durations.
    #[must_use]
    pub const fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }
}

impl Add for Duration {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl std::ops::Mul<u64> for Duration {
    type Output = Self;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl std::ops::Div<u64> for Duration {
    type Output = Self;
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A point in virtual time, measured in milliseconds since the start of the
/// experiment.
///
/// # Example
///
/// ```
/// use dataflasks_types::{Duration, SimTime};
///
/// let start = SimTime::ZERO;
/// let later = start + Duration::from_secs(1);
/// assert!(later > start);
/// assert_eq!(later - start, Duration::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: Self = Self(0);

    /// Creates a time point from milliseconds since the origin.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis)
    }

    /// Milliseconds elapsed since the origin.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the time elapsed since `earlier`, or [`Duration::ZERO`] if
    /// `earlier` is in the future.
    #[must_use]
    pub const fn saturating_since(self, earlier: Self) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = Self;
    fn add(self, rhs: Duration) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, rhs: Self) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(3), Duration::from_millis(3_000));
        assert_eq!(Duration::from_secs(3).as_secs(), 3);
        assert_eq!(Duration::ZERO.as_millis(), 0);
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_millis(100) + Duration::from_millis(50);
        assert_eq!(d.as_millis(), 150);
        assert_eq!((d * 2).as_millis(), 300);
        assert_eq!((d / 3).as_millis(), 50);
        assert_eq!(
            Duration::from_millis(10).saturating_sub(Duration::from_millis(20)),
            Duration::ZERO
        );
    }

    #[test]
    fn sim_time_advances_and_subtracts() {
        let mut t = SimTime::ZERO;
        t += Duration::from_millis(250);
        assert_eq!(t.as_millis(), 250);
        let later = t + Duration::from_millis(750);
        assert_eq!(later - t, Duration::from_millis(750));
        assert_eq!(t.saturating_since(later), Duration::ZERO);
        assert_eq!(later.saturating_since(t), Duration::from_millis(750));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration::from_millis(42).to_string(), "42ms");
        assert_eq!(SimTime::from_millis(42).to_string(), "t=42ms");
    }

    #[test]
    fn ordering_follows_the_timeline() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(Duration::from_millis(1) < Duration::from_secs(1));
    }
}
