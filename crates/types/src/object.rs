//! The DataFlasks object model: keys, versions, values and stored objects.
//!
//! DataFlasks stores *objects*: arrays of arbitrary bytes addressed by an
//! identifier and carrying a version. Versions are attached by the upper
//! layer (DATADROPLETS in STRATUS), which is responsible for concurrency
//! control — DataFlasks itself only assumes that `put` operations on the same
//! item are totally ordered by their version and that `get` operations name
//! the version they want (or ask for the latest one).

use std::fmt;
use std::sync::Arc;

use crate::hashing::{fnv1a_64, splitmix64};

/// A key in the 64-bit DataFlasks key space.
///
/// User-facing keys (arbitrary byte strings) are mapped onto the key space by
/// hashing; the numeric key determines which slice is responsible for the
/// object (see [`crate::SlicePartition`]).
///
/// # Example
///
/// ```
/// use dataflasks_types::Key;
///
/// let from_name = Key::from_user_key("session:9");
/// let same = Key::from_user_key("session:9");
/// assert_eq!(from_name, same);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(u64);

impl Key {
    /// Creates a key directly from its position in the 64-bit key space.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// Hashes an arbitrary user-level key (as bytes) onto the key space.
    ///
    /// The FNV-1a hash is post-mixed with SplitMix64 so that short sequential
    /// user keys (`user0`, `user1`, …) spread uniformly over the *high* bits
    /// of the key space, which is what the contiguous slice ranges partition.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Self(splitmix64(fnv1a_64(bytes)))
    }

    /// Hashes an arbitrary user-level key (as a string) onto the key space.
    #[must_use]
    pub fn from_user_key(user_key: &str) -> Self {
        Self::from_bytes(user_key.as_bytes())
    }

    /// Returns the position of the key in the 64-bit key space.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{:016x}", self.0)
    }
}

impl From<u64> for Key {
    fn from(raw: u64) -> Self {
        Self::from_raw(raw)
    }
}

/// A version stamp attached to an object by the upper layer.
///
/// Puts on the same key are totally ordered by version; a replica keeps the
/// object with the highest version it has seen (and, optionally, a bounded
/// history of older versions so that versioned reads can be served).
///
/// # Example
///
/// ```
/// use dataflasks_types::Version;
///
/// let v1 = Version::new(1);
/// assert!(v1 < v1.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(u64);

impl Version {
    /// The smallest version; used for objects that have never been written.
    pub const ZERO: Self = Self(0);

    /// Creates a version from its numeric value.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// Returns the numeric value of the version.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the version immediately after this one.
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Version {
    fn from(value: u64) -> Self {
        Self::new(value)
    }
}

/// An immutable object payload: an array of arbitrary bytes.
///
/// Values are reference-counted so that the heavily replicated copies held by
/// every node of a slice (and the copies travelling through the simulated
/// network) share one allocation. Cloning a [`Value`] is cheap.
///
/// # Example
///
/// ```
/// use dataflasks_types::Value;
///
/// let v = Value::from_bytes(b"payload");
/// let copy = v.clone();
/// assert_eq!(v, copy);
/// assert_eq!(v.len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Value(Arc<[u8]>);

impl Value {
    /// Creates a value by copying the given bytes.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Self(Arc::from(bytes))
    }

    /// Creates a value of `len` bytes filled with a repeated marker byte.
    ///
    /// Useful for workload generators that only care about payload size.
    #[must_use]
    pub fn filled(len: usize, marker: u8) -> Self {
        Self(Arc::from(vec![marker; len].as_slice()))
    }

    /// Returns the payload as a byte slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Returns the payload size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Value {
    fn from(bytes: Vec<u8>) -> Self {
        Self(Arc::from(bytes.as_slice()))
    }
}

impl From<&[u8]> for Value {
    fn from(bytes: &[u8]) -> Self {
        Self::from_bytes(bytes)
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A versioned object as stored by a replica and shipped between nodes.
///
/// # Example
///
/// ```
/// use dataflasks_types::{Key, StoredObject, Value, Version};
///
/// let object = StoredObject::new(Key::from_user_key("a"), Version::new(3), Value::from_bytes(b"x"));
/// assert_eq!(object.version, Version::new(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredObject {
    /// Key the object is addressed by.
    pub key: Key,
    /// Version attached by the upper layer.
    pub version: Version,
    /// Payload bytes.
    pub value: Value,
}

impl StoredObject {
    /// Creates a stored object from its parts.
    #[must_use]
    pub fn new(key: Key, version: Version, value: Value) -> Self {
        Self {
            key,
            version,
            value,
        }
    }

    /// Returns `true` if this object supersedes `other` (same key, strictly
    /// higher version).
    #[must_use]
    pub fn supersedes(&self, other: &Self) -> bool {
        self.key == other.key && self.version > other.version
    }

    /// Approximate in-memory footprint of the object in bytes, used by the
    /// capacity accounting of the data store.
    #[must_use]
    pub fn weight(&self) -> usize {
        std::mem::size_of::<Key>() + std::mem::size_of::<Version>() + self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_from_identical_user_keys_are_equal() {
        assert_eq!(Key::from_user_key("x"), Key::from_bytes(b"x"));
        assert_ne!(Key::from_user_key("x"), Key::from_user_key("y"));
    }

    #[test]
    fn key_display_is_hex_padded() {
        assert_eq!(Key::from_raw(0xff).to_string(), "k00000000000000ff");
    }

    #[test]
    fn sequential_user_keys_spread_over_the_high_bits() {
        // The slice partition splits the key space into contiguous ranges, so
        // user keys must populate the high bits uniformly.
        let mut top_bytes = std::collections::HashSet::new();
        for i in 0..64u32 {
            top_bytes.insert(Key::from_user_key(&format!("user{i}")).as_u64() >> 56);
        }
        assert!(top_bytes.len() > 16, "expected spread, got {top_bytes:?}");
    }

    #[test]
    fn version_next_is_monotonic() {
        let mut v = Version::ZERO;
        for _ in 0..10 {
            let next = v.next();
            assert!(next > v);
            v = next;
        }
        assert_eq!(v, Version::new(10));
    }

    #[test]
    fn value_clone_shares_allocation() {
        let v = Value::from_bytes(b"hello world");
        let c = v.clone();
        assert_eq!(v.as_slice().as_ptr(), c.as_slice().as_ptr());
    }

    #[test]
    fn filled_value_has_requested_size() {
        let v = Value::filled(1024, 0xAB);
        assert_eq!(v.len(), 1024);
        assert!(v.as_slice().iter().all(|&b| b == 0xAB));
        assert!(!v.is_empty());
        assert!(Value::from_bytes(b"").is_empty());
    }

    #[test]
    fn supersedes_requires_same_key_and_higher_version() {
        let k = Key::from_user_key("k");
        let old = StoredObject::new(k, Version::new(1), Value::from_bytes(b"a"));
        let new = StoredObject::new(k, Version::new(2), Value::from_bytes(b"b"));
        let other = StoredObject::new(
            Key::from_user_key("other"),
            Version::new(9),
            Value::default(),
        );
        assert!(new.supersedes(&old));
        assert!(!old.supersedes(&new));
        assert!(!other.supersedes(&old));
        assert!(!new.supersedes(&new));
    }

    #[test]
    fn weight_tracks_payload_size() {
        let small = StoredObject::new(Key::from_raw(1), Version::ZERO, Value::filled(10, 0));
        let big = StoredObject::new(Key::from_raw(1), Version::ZERO, Value::filled(1000, 0));
        assert!(big.weight() > small.weight());
        assert!(small.weight() >= 10);
    }
}
