//! Common vocabulary types for the DataFlasks epidemic key-value substrate.
//!
//! This crate defines the identifiers, time representation, object model and
//! configuration shared by every other crate of the workspace:
//!
//! * [`NodeId`] — identity of a DataFlasks node,
//! * [`Key`], [`Version`], [`Value`], [`StoredObject`] — the object model
//!   (objects are arrays of arbitrary bytes addressed by a key and carrying a
//!   version assigned by the upper layer, exactly as required by the paper),
//! * [`SliceId`] and [`SlicePartition`] — the key-range partition of the key
//!   space into `k` slices,
//! * [`SimTime`] and [`Duration`] — virtual time used by the protocols and by
//!   the discrete-event simulator,
//! * [`RequestId`] — unique identifier attached to client requests so that
//!   duplicate epidemic deliveries and duplicate replies can be suppressed,
//! * [`NodeProfile`] — locally measured attributes (storage capacity) used by
//!   the slicing protocol,
//! * [`config`] — tunable protocol parameters.
//!
//! # Example
//!
//! ```
//! use dataflasks_types::{Key, SlicePartition, Version, Value, StoredObject};
//!
//! let partition = SlicePartition::new(10);
//! let key = Key::from_user_key("user:42");
//! let slice = partition.slice_of(key);
//! assert!(slice.index() < 10);
//!
//! let object = StoredObject::new(key, Version::new(1), Value::from_bytes(b"hello"));
//! assert_eq!(object.value.as_slice(), b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod hashing;
pub mod ids;
pub mod object;
pub mod profile;
pub mod slice;
pub mod time;

pub use config::{
    DisseminationConfig, NodeConfig, PssConfig, ReplicationConfig, SlicingConfig,
    DEFAULT_STORE_SHARDS,
};
pub use hashing::{fnv1a_64, FastHashMap, FastHashSet, FastHashState, FastHasher};
pub use ids::{NodeId, RequestId};
pub use object::{Key, StoredObject, Value, Version};
pub use profile::NodeProfile;
pub use slice::{KeyRange, SliceId, SlicePartition};
pub use time::{Duration, SimTime};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_api_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NodeId>();
        assert_send_sync::<RequestId>();
        assert_send_sync::<Key>();
        assert_send_sync::<Version>();
        assert_send_sync::<Value>();
        assert_send_sync::<StoredObject>();
        assert_send_sync::<SliceId>();
        assert_send_sync::<SlicePartition>();
        assert_send_sync::<SimTime>();
        assert_send_sync::<Duration>();
        assert_send_sync::<NodeConfig>();
        assert_send_sync::<NodeProfile>();
    }
}
