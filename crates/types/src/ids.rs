//! Node and request identifiers.

use std::fmt;

/// Identity of a DataFlasks node.
///
/// Node identifiers are opaque 64-bit values. In the simulator they are dense
/// indices (`0..n`), in the threaded runtime they are assigned by the
/// deployment. Nothing in the protocols depends on identifiers being dense or
/// contiguous — placement is governed by the slicing protocol, not by the
/// identifier (this is exactly the difference with a DHT).
///
/// # Example
///
/// ```
/// use dataflasks_types::NodeId;
///
/// let a = NodeId::new(7);
/// assert_eq!(a.as_u64(), 7);
/// assert_eq!(a.to_string(), "n7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node identifier from its raw 64-bit representation.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw 64-bit representation.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        Self::new(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.as_u64()
    }
}

/// Unique identifier attached to every client request.
///
/// Epidemic dissemination delivers the same request to a node several times
/// and several replicas may answer the same read; request identifiers let
/// both the nodes (forward-once duplicate suppression) and the client library
/// (first-reply-wins) deduplicate.
///
/// A request identifier is the pair of the issuing client and a per-client
/// sequence number, which makes identifiers unique without coordination.
///
/// # Example
///
/// ```
/// use dataflasks_types::RequestId;
///
/// let first = RequestId::new(3, 0);
/// let second = RequestId::new(3, 1);
/// assert_ne!(first, second);
/// assert_eq!(first.client(), 3);
/// assert_eq!(second.sequence(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId {
    client: u64,
    sequence: u64,
}

impl RequestId {
    /// Creates a request identifier from a client identifier and a per-client
    /// sequence number.
    #[must_use]
    pub const fn new(client: u64, sequence: u64) -> Self {
        Self { client, sequence }
    }

    /// Identifier of the client that issued the request.
    #[must_use]
    pub const fn client(self) -> u64 {
        self.client
    }

    /// Per-client sequence number of the request.
    #[must_use]
    pub const fn sequence(self) -> u64 {
        self.sequence
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}#{}", self.client, self.sequence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip_and_display() {
        let id = NodeId::from(123u64);
        assert_eq!(u64::from(id), 123);
        assert_eq!(format!("{id}"), "n123");
        assert_eq!(format!("{id:?}"), "NodeId(123)");
    }

    #[test]
    fn node_ids_order_by_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn request_ids_are_unique_per_client_sequence() {
        let mut seen = HashSet::new();
        for client in 0..10u64 {
            for seq in 0..10u64 {
                assert!(seen.insert(RequestId::new(client, seq)));
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn request_id_display_is_informative() {
        assert_eq!(RequestId::new(4, 17).to_string(), "c4#17");
    }

    #[test]
    fn default_ids_are_zero() {
        assert_eq!(NodeId::default().as_u64(), 0);
        assert_eq!(RequestId::default(), RequestId::new(0, 0));
    }
}
