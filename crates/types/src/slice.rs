//! Key-range partitioning of the key space into slices.
//!
//! DataFlasks divides the system into `k` groups of nodes — *slices* — and
//! assigns each slice a contiguous range of the 64-bit key space. A node
//! stores an object if and only if the object's key falls in the range of the
//! slice the node currently belongs to (the node learns its slice from the
//! slicing protocol, see the `dataflasks-slicing` crate).

use std::fmt;

use crate::object::Key;

/// Identifier of a slice: an index in `0..slice_count`.
///
/// # Example
///
/// ```
/// use dataflasks_types::SliceId;
///
/// let s = SliceId::new(3);
/// assert_eq!(s.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SliceId(u32);

impl SliceId {
    /// Creates a slice identifier from its index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the index of the slice.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for SliceId {
    fn from(index: u32) -> Self {
        Self::new(index)
    }
}

/// The partition of the 64-bit key space into `k` equally sized contiguous
/// ranges, one per slice.
///
/// The partition is a pure function of the slice count, so every node (and
/// every client) computes the same mapping locally, with no coordination —
/// only the slice count `k` must be agreed on (it is part of the system
/// configuration, and may be reconfigured dynamically, in which case the
/// anti-entropy protocol migrates objects to their new owners).
///
/// # Example
///
/// ```
/// use dataflasks_types::{Key, SliceId, SlicePartition};
///
/// let partition = SlicePartition::new(4);
/// assert_eq!(partition.slice_count(), 4);
/// assert_eq!(partition.slice_of(Key::from_raw(0)), SliceId::new(0));
/// assert_eq!(partition.slice_of(Key::from_raw(u64::MAX)), SliceId::new(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlicePartition {
    slice_count: u32,
}

impl SlicePartition {
    /// Creates a partition with `slice_count` slices.
    ///
    /// # Panics
    ///
    /// Panics if `slice_count` is zero: a system always has at least one
    /// slice.
    #[must_use]
    pub fn new(slice_count: u32) -> Self {
        assert!(slice_count > 0, "a partition needs at least one slice");
        Self { slice_count }
    }

    /// Number of slices in the partition.
    #[must_use]
    pub const fn slice_count(self) -> u32 {
        self.slice_count
    }

    /// Returns the slice responsible for `key`.
    ///
    /// The key space is split into `slice_count` contiguous ranges of (almost)
    /// equal width; keys map to the range containing them.
    #[must_use]
    pub fn slice_of(self, key: Key) -> SliceId {
        let width = Self::range_width(self.slice_count);
        let index = (key.as_u64() / width).min(u64::from(self.slice_count - 1));
        SliceId::new(index as u32)
    }

    /// Returns the inclusive lower bound of the key range owned by `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is not part of this partition.
    #[must_use]
    pub fn range_start(self, slice: SliceId) -> Key {
        assert!(slice.index() < self.slice_count, "slice out of range");
        Key::from_raw(u64::from(slice.index()) * Self::range_width(self.slice_count))
    }

    /// Returns the inclusive upper bound of the key range owned by `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is not part of this partition.
    #[must_use]
    pub fn range_end(self, slice: SliceId) -> Key {
        assert!(slice.index() < self.slice_count, "slice out of range");
        if slice.index() == self.slice_count - 1 {
            Key::from_raw(u64::MAX)
        } else {
            Key::from_raw(u64::from(slice.index() + 1) * Self::range_width(self.slice_count) - 1)
        }
    }

    /// Returns `true` if `slice` owns `key` under this partition.
    #[must_use]
    pub fn owns(self, slice: SliceId, key: Key) -> bool {
        self.slice_of(key) == slice
    }

    /// Maps a node's normalised rank in `[0, 1)` (as estimated by the slicing
    /// protocol) to the slice it should join.
    ///
    /// Rank values outside `[0, 1)` are clamped into the valid slice range so
    /// that estimation noise at the extremes cannot produce an invalid slice.
    #[must_use]
    pub fn slice_of_rank(self, rank: f64) -> SliceId {
        let clamped = rank.clamp(0.0, 1.0);
        let index = ((clamped * f64::from(self.slice_count)) as u32).min(self.slice_count - 1);
        SliceId::new(index)
    }

    /// Returns the inclusive key range owned by `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is not part of this partition.
    #[must_use]
    pub fn range_of(self, slice: SliceId) -> KeyRange {
        KeyRange::new(self.range_start(slice), self.range_end(slice))
    }

    fn range_width(slice_count: u32) -> u64 {
        // Ceiling division so that `slice_count * width` covers the whole key
        // space; the last slice absorbs the remainder.
        (u64::MAX / u64::from(slice_count)).saturating_add(1)
    }
}

/// An inclusive, contiguous range of the 64-bit key space.
///
/// Key ranges name the chunk of the key space one incremental anti-entropy
/// exchange covers: instead of summarising a replica's whole store, an
/// exchange carries the digest of one range (one shard of the sharded store)
/// plus the range itself, so the responder can diff and ship only that chunk.
///
/// # Example
///
/// ```
/// use dataflasks_types::{Key, KeyRange};
///
/// let low = KeyRange::new(Key::from_raw(0), Key::from_raw(99));
/// assert!(low.contains(Key::from_raw(42)));
/// assert!(!low.contains(Key::from_raw(100)));
/// assert!(KeyRange::FULL.contains_range(&low));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyRange {
    start: Key,
    end: Key,
}

impl KeyRange {
    /// The whole 64-bit key space.
    pub const FULL: Self = Self {
        start: Key::from_raw(0),
        end: Key::from_raw(u64::MAX),
    };

    /// Creates the inclusive range `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` (an inclusive range is never empty).
    #[must_use]
    pub fn new(start: Key, end: Key) -> Self {
        assert!(start <= end, "key range start must not exceed its end");
        Self { start, end }
    }

    /// The inclusive lower bound.
    #[must_use]
    pub const fn start(self) -> Key {
        self.start
    }

    /// The inclusive upper bound.
    #[must_use]
    pub const fn end(self) -> Key {
        self.end
    }

    /// Returns `true` if `key` falls inside the range.
    #[must_use]
    pub fn contains(self, key: Key) -> bool {
        self.start <= key && key <= self.end
    }

    /// Returns `true` if every key of `other` falls inside this range.
    #[must_use]
    pub fn contains_range(self, other: &Self) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Returns `true` if the two ranges share at least one key.
    #[must_use]
    pub fn overlaps(self, other: &Self) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

impl Default for SlicePartition {
    fn default() -> Self {
        Self::new(10)
    }
}

impl fmt::Display for SlicePartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition(k={})", self.slice_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn zero_slices_is_rejected() {
        let _ = SlicePartition::new(0);
    }

    #[test]
    fn single_slice_owns_everything() {
        let p = SlicePartition::new(1);
        assert_eq!(p.slice_of(Key::from_raw(0)), SliceId::new(0));
        assert_eq!(p.slice_of(Key::from_raw(u64::MAX)), SliceId::new(0));
        assert_eq!(p.range_start(SliceId::new(0)), Key::from_raw(0));
        assert_eq!(p.range_end(SliceId::new(0)), Key::from_raw(u64::MAX));
    }

    #[test]
    fn every_key_maps_to_a_valid_slice() {
        for k in [1u32, 2, 3, 7, 10, 64, 1000] {
            let p = SlicePartition::new(k);
            for probe in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
                assert!(p.slice_of(Key::from_raw(probe)).index() < k);
            }
        }
    }

    #[test]
    fn ranges_are_consistent_with_slice_of() {
        let p = SlicePartition::new(7);
        for s in 0..7 {
            let slice = SliceId::new(s);
            assert_eq!(p.slice_of(p.range_start(slice)), slice);
            assert_eq!(p.slice_of(p.range_end(slice)), slice);
            assert!(p.owns(slice, p.range_start(slice)));
        }
    }

    #[test]
    fn slices_partition_uniformly_for_random_keys() {
        let p = SlicePartition::new(10);
        let mut counts = [0u32; 10];
        for i in 0..10_000u64 {
            let key = Key::from_raw(crate::hashing::splitmix64(i));
            counts[p.slice_of(key).index() as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (700..=1300).contains(&c),
                "uneven slice distribution: {counts:?}"
            );
        }
    }

    #[test]
    fn rank_mapping_covers_all_slices_and_clamps() {
        let p = SlicePartition::new(5);
        assert_eq!(p.slice_of_rank(0.0), SliceId::new(0));
        assert_eq!(p.slice_of_rank(0.19), SliceId::new(0));
        assert_eq!(p.slice_of_rank(0.2), SliceId::new(1));
        assert_eq!(p.slice_of_rank(0.999), SliceId::new(4));
        assert_eq!(p.slice_of_rank(1.0), SliceId::new(4));
        assert_eq!(p.slice_of_rank(-3.0), SliceId::new(0));
        assert_eq!(p.slice_of_rank(42.0), SliceId::new(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SliceId::new(2).to_string(), "s2");
        assert_eq!(SlicePartition::new(8).to_string(), "partition(k=8)");
    }

    #[test]
    fn range_of_matches_start_and_end() {
        let p = SlicePartition::new(5);
        for s in 0..5 {
            let slice = SliceId::new(s);
            let range = p.range_of(slice);
            assert_eq!(range.start(), p.range_start(slice));
            assert_eq!(range.end(), p.range_end(slice));
            assert!(range.contains(p.range_start(slice)));
            assert!(range.contains(p.range_end(slice)));
        }
    }

    #[test]
    fn key_range_containment_and_overlap() {
        let low = KeyRange::new(Key::from_raw(0), Key::from_raw(99));
        let mid = KeyRange::new(Key::from_raw(50), Key::from_raw(149));
        let high = KeyRange::new(Key::from_raw(100), Key::from_raw(u64::MAX));
        assert!(low.overlaps(&mid));
        assert!(mid.overlaps(&low));
        assert!(!low.overlaps(&high));
        assert!(mid.overlaps(&high));
        assert!(KeyRange::FULL.contains_range(&low));
        assert!(KeyRange::FULL.contains_range(&high));
        assert!(!low.contains_range(&mid));
        assert!(low.contains(Key::from_raw(99)));
        assert!(!low.contains(Key::from_raw(100)));
        assert_eq!(low.to_string(), "[k0000000000000000, k0000000000000063]");
    }

    #[test]
    #[should_panic(expected = "start must not exceed")]
    fn inverted_key_range_is_rejected() {
        let _ = KeyRange::new(Key::from_raw(2), Key::from_raw(1));
    }

    #[test]
    fn partition_ranges_tile_the_key_space() {
        let p = SlicePartition::new(7);
        for s in 0..6 {
            let this = p.range_of(SliceId::new(s));
            let next = p.range_of(SliceId::new(s + 1));
            assert_eq!(this.end().as_u64() + 1, next.start().as_u64());
            assert!(!this.overlaps(&next));
        }
        assert_eq!(p.range_of(SliceId::new(6)).end(), Key::from_raw(u64::MAX));
    }
}
