//! Stable, dependency-free hashing used to map user keys onto the key space.
//!
//! DataFlasks partitions a 64-bit key space into `k` contiguous ranges, one
//! per slice. User-facing keys (arbitrary byte strings) are mapped onto that
//! space with the FNV-1a hash, chosen because it is deterministic across
//! platforms and process runs — a requirement for reproducible simulation
//! experiments — and cheap enough to be negligible next to network costs.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte slice with the 64-bit FNV-1a function.
///
/// The result is stable across platforms, compiler versions and process
/// runs, which makes key placement reproducible in experiments.
///
/// # Example
///
/// ```
/// use dataflasks_types::fnv1a_64;
///
/// assert_eq!(fnv1a_64(b"abc"), fnv1a_64(b"abc"));
/// assert_ne!(fnv1a_64(b"abc"), fnv1a_64(b"abd"));
/// ```
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Mixes a 64-bit integer with the SplitMix64 finaliser.
///
/// Used to spread sequential identifiers (record numbers, node indices)
/// uniformly over the key space so that key-range slices receive balanced
/// load even when the workload enumerates keys sequentially.
#[must_use]
pub fn splitmix64(value: u64) -> u64 {
    let mut z = value.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fast, deterministic [`std::hash::Hasher`] for integer-keyed tables.
///
/// Protocol state keyed by node or request identifiers lives on the hot
/// path of every gossip exchange; the default SipHash spends more time
/// hashing an 8-byte id than the table spends probing. This hasher runs the
/// SplitMix64 finaliser over integer writes and FNV-1a over byte writes —
/// both already the crate's stable primitives — so maps stay deterministic
/// across platforms and process runs (unlike `RandomState`), which seeded
/// simulations require.
///
/// Not DoS-resistant; use only for keys an attacker does not choose.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        self.0 = splitmix64(self.0 ^ fnv1a_64(bytes));
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = splitmix64(self.0 ^ value);
    }

    fn write_u32(&mut self, value: u32) {
        self.write_u64(u64::from(value));
    }

    fn write_u8(&mut self, value: u8) {
        self.write_u64(u64::from(value));
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// Deterministic build-state for [`FastHasher`]-backed tables.
pub type FastHashState = std::hash::BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed through [`FastHasher`] (deterministic, cheap on
/// integer ids).
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastHashState>;

/// A `HashSet` keyed through [`FastHasher`].
pub type FastHashSet<K> = std::collections::HashSet<K, FastHashState>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference values for the 64-bit FNV-1a function.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_distinguishes_nearby_inputs() {
        assert_ne!(fnv1a_64(b"key-1"), fnv1a_64(b"key-2"));
        assert_ne!(fnv1a_64(b"key-1"), fnv1a_64(b"key-10"));
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(42), splitmix64(42));
        // Sequential inputs must land far apart.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert!(a.abs_diff(b) > 1 << 32);
    }

    #[test]
    fn splitmix_zero_is_not_zero() {
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn fast_hash_maps_are_deterministic_across_instances() {
        use crate::NodeId;
        let build = |seed: u64| {
            let mut map: FastHashMap<NodeId, u64> = FastHashMap::default();
            for i in 0..64u64 {
                map.insert(NodeId::new(i * 7 + seed), i);
            }
            map.iter()
                .map(|(k, v)| (k.as_u64(), *v))
                .fold(0u64, |acc, (k, v)| acc ^ splitmix64(k ^ v))
        };
        // Same content → same (order-independent) digest, and two instances
        // never disagree the way RandomState-backed maps can.
        assert_eq!(build(1), build(1));
    }

    #[test]
    fn splitmix_spreads_fnv_hashes_across_high_bits() {
        // FNV-1a alone concentrates short sequential keys in few high-byte
        // values; the key constructor therefore post-mixes with SplitMix64.
        // This test documents why that second step is required.
        let mut top_bytes = std::collections::HashSet::new();
        for i in 0..64u32 {
            let key = format!("user{i}");
            top_bytes.insert(splitmix64(fnv1a_64(key.as_bytes())) >> 56);
        }
        assert!(top_bytes.len() > 16, "expected spread, got {top_bytes:?}");
    }
}
