//! Tunable protocol parameters.
//!
//! Configuration structs are plain data: all fields are public and the
//! defaults reproduce the configuration used by the paper's evaluation
//! (epidemic fanout of `ln N + c`, ten slices, periodic gossip in the order
//! of seconds). [`NodeConfig::for_system_size`] derives a consistent
//! configuration for a target system size, which is what the simulator and
//! the benchmark harness use.

use crate::time::Duration;

/// Parameters of the Peer Sampling Service (Cyclon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PssConfig {
    /// Size of the partial view (number of neighbour descriptors kept).
    ///
    /// The epidemic dissemination literature (and the paper's background
    /// section) calls for `ln N + c` entries for reliable dissemination.
    pub view_size: usize,
    /// Number of descriptors exchanged in one shuffle (`l` in Cyclon).
    pub shuffle_length: usize,
    /// Period between two shuffles initiated by a node.
    pub shuffle_period: Duration,
    /// Size of the intra-slice view maintained once the node knows its slice.
    pub intra_view_size: usize,
    /// Maximum age after which a descriptor is considered stale and dropped
    /// (ages are measured in shuffle rounds).
    pub max_descriptor_age: u32,
}

impl Default for PssConfig {
    fn default() -> Self {
        Self {
            view_size: 20,
            shuffle_length: 8,
            shuffle_period: Duration::from_secs(1),
            intra_view_size: 12,
            max_descriptor_age: 20,
        }
    }
}

impl PssConfig {
    /// Derives the view size `ln N + c` recommended for epidemic
    /// dissemination in a system of `system_size` nodes.
    #[must_use]
    pub fn view_size_for(system_size: usize, c: usize) -> usize {
        ((system_size.max(2) as f64).ln().ceil() as usize) + c
    }
}

/// Parameters of the distributed slicing protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicingConfig {
    /// Number of slices `k` the system is divided into.
    pub slice_count: u32,
    /// Number of attribute samples kept by the rank estimator.
    pub sample_buffer_size: usize,
    /// Number of attribute samples pushed in one gossip exchange.
    pub samples_per_exchange: usize,
    /// Period between two slicing gossip exchanges initiated by a node.
    pub gossip_period: Duration,
    /// Number of gossip rounds a sample stays in the buffer before it is
    /// considered stale (protects the rank estimate against departed nodes).
    pub sample_ttl_rounds: u32,
}

impl Default for SlicingConfig {
    fn default() -> Self {
        Self {
            slice_count: 10,
            sample_buffer_size: 128,
            samples_per_exchange: 16,
            gossip_period: Duration::from_secs(1),
            sample_ttl_rounds: 30,
        }
    }
}

/// Parameters of the epidemic request dissemination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisseminationConfig {
    /// Fanout used when forwarding a request outside its target slice.
    pub global_fanout: usize,
    /// Maximum number of hops a request travels outside its target slice.
    pub global_ttl: u32,
    /// Fanout used when forwarding a request inside its target slice.
    pub intra_fanout: usize,
    /// Maximum number of hops a request travels inside its target slice.
    pub intra_ttl: u32,
    /// Capacity of the per-node duplicate-suppression cache (request ids).
    pub dedup_cache_size: usize,
}

impl Default for DisseminationConfig {
    fn default() -> Self {
        Self {
            global_fanout: 8,
            global_ttl: 6,
            intra_fanout: 8,
            intra_ttl: 6,
            dedup_cache_size: 4096,
        }
    }
}

/// Parameters of replication maintenance (anti-entropy inside a slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Whether periodic anti-entropy repair is enabled.
    ///
    /// The paper lists replication maintenance under churn as future work;
    /// the mechanism is implemented here and can be disabled to reproduce the
    /// paper's baseline behaviour.
    pub anti_entropy_enabled: bool,
    /// Period between two anti-entropy exchanges initiated by a node.
    pub anti_entropy_period: Duration,
    /// Maximum number of objects shipped in one anti-entropy reply, bounding
    /// the cost of a single state-transfer message.
    pub max_objects_per_exchange: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            anti_entropy_enabled: true,
            anti_entropy_period: Duration::from_secs(5),
            max_objects_per_exchange: 256,
        }
    }
}

/// Default number of key-range shards a node's data store is split into
/// (mirrors `dataflasks_store::DEFAULT_SHARD_COUNT`).
pub const DEFAULT_STORE_SHARDS: u32 = 8;

/// Complete configuration of a DataFlasks node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// Peer Sampling Service parameters.
    pub pss: PssConfig,
    /// Distributed slicing parameters.
    pub slicing: SlicingConfig,
    /// Epidemic dissemination parameters.
    pub dissemination: DisseminationConfig,
    /// Replication maintenance parameters.
    pub replication: ReplicationConfig,
    /// Capacity of the local data store in abstract object units
    /// (0 means unbounded).
    pub store_capacity_objects: usize,
    /// Number of key-range shards the node's data store is split into, so
    /// anti-entropy digests, shipping diffs and slice-migration scans touch
    /// only affected shards. `0` and `1` both mean a single (unsharded)
    /// shard.
    pub store_shards: u32,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            pss: PssConfig::default(),
            slicing: SlicingConfig::default(),
            dissemination: DisseminationConfig::default(),
            replication: ReplicationConfig::default(),
            store_capacity_objects: 0,
            store_shards: DEFAULT_STORE_SHARDS,
        }
    }
}

impl NodeConfig {
    /// Derives a consistent configuration for a system of `system_size` nodes
    /// divided into `slice_count` slices.
    ///
    /// The epidemic view size and fanouts are set to `ln N + c` (with the
    /// constant `c = 3` used throughout the evaluation), and the intra-slice
    /// parameters are derived from the expected slice size `N / k`.
    #[must_use]
    pub fn for_system_size(system_size: usize, slice_count: u32) -> Self {
        let fanout = PssConfig::view_size_for(system_size, 3);
        let slice_size = (system_size / slice_count.max(1) as usize).max(2);
        let intra_fanout = PssConfig::view_size_for(slice_size, 3);
        Self {
            pss: PssConfig {
                view_size: fanout.max(8),
                shuffle_length: (fanout / 2).max(4),
                intra_view_size: intra_fanout.max(6),
                ..PssConfig::default()
            },
            slicing: SlicingConfig {
                slice_count,
                // The rank estimator can only distinguish `buffer + 1` rank
                // levels, so the buffer must exceed the slice count or entire
                // slices become unclaimable (no node's quantised rank ever
                // lands in them, and every key hashing there is unservable).
                // Two samples per slice keeps every slice claimable while
                // bounding per-node memory at large `k`.
                sample_buffer_size: (2 * slice_count as usize)
                    .max(SlicingConfig::default().sample_buffer_size),
                ..SlicingConfig::default()
            },
            dissemination: DisseminationConfig {
                // The global phase is a *search* for the target slice, not a
                // broadcast: a small fanout suffices because views are biased
                // towards known slice members (paper §IV-B: reach only the
                // percentage of nodes needed to hit the slice). The intra
                // phase must cover the whole slice, so it uses ln(slice) + c.
                global_fanout: 3,
                intra_fanout: intra_fanout.max(4),
                global_ttl: Self::hops_to_cover(system_size, fanout.max(4)),
                intra_ttl: Self::hops_to_cover(slice_size, intra_fanout.max(4)),
                ..DisseminationConfig::default()
            },
            replication: ReplicationConfig::default(),
            store_capacity_objects: 0,
            store_shards: DEFAULT_STORE_SHARDS,
        }
    }

    /// Number of epidemic hops needed for a fanout-`f` flood to cover `n`
    /// nodes, with two extra hops of slack.
    #[must_use]
    pub fn hops_to_cover(n: usize, fanout: usize) -> u32 {
        let n = n.max(2) as f64;
        let f = (fanout.max(2)) as f64;
        (n.ln() / f.ln()).ceil() as u32 + 2
    }

    /// Returns a copy of the configuration with anti-entropy disabled
    /// (the configuration evaluated in the paper).
    #[must_use]
    pub fn without_anti_entropy(mut self) -> Self {
        self.replication.anti_entropy_enabled = false;
        self
    }

    /// Returns a copy of the configuration with a different slice count.
    #[must_use]
    pub fn with_slice_count(mut self, slice_count: u32) -> Self {
        self.slicing.slice_count = slice_count;
        self
    }

    /// Returns a copy of the configuration with a different number of
    /// data-store key-range shards (`1` or `0` disables sharding).
    #[must_use]
    pub fn with_store_shards(mut self, store_shards: u32) -> Self {
        self.store_shards = store_shards;
        self
    }

    /// The number of store shards to materialise: the configured knob,
    /// clamped to at least one shard.
    #[must_use]
    pub fn effective_store_shards(&self) -> u32 {
        self.store_shards.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = NodeConfig::default();
        assert!(cfg.pss.view_size >= cfg.pss.shuffle_length);
        assert!(cfg.slicing.slice_count > 0);
        assert!(cfg.dissemination.global_fanout > 0);
        assert!(cfg.replication.anti_entropy_enabled);
    }

    #[test]
    fn view_size_follows_ln_n_plus_c() {
        assert_eq!(PssConfig::view_size_for(1000, 3), 10);
        assert!(PssConfig::view_size_for(3000, 3) >= PssConfig::view_size_for(500, 3));
    }

    #[test]
    fn derived_config_scales_with_system_size() {
        let small = NodeConfig::for_system_size(500, 10);
        let large = NodeConfig::for_system_size(3000, 10);
        assert!(large.pss.view_size >= small.pss.view_size);
        assert!(large.dissemination.global_fanout >= small.dissemination.global_fanout);
        assert_eq!(small.slicing.slice_count, 10);
        assert_eq!(large.slicing.slice_count, 10);
    }

    #[test]
    fn hops_to_cover_grows_with_n_and_shrinks_with_fanout() {
        assert!(NodeConfig::hops_to_cover(3000, 8) >= NodeConfig::hops_to_cover(500, 8));
        assert!(NodeConfig::hops_to_cover(3000, 4) >= NodeConfig::hops_to_cover(3000, 16));
        assert!(NodeConfig::hops_to_cover(2, 2) >= 3);
    }

    #[test]
    fn builder_style_modifiers() {
        let cfg = NodeConfig::for_system_size(1000, 10)
            .without_anti_entropy()
            .with_slice_count(25);
        assert!(!cfg.replication.anti_entropy_enabled);
        assert_eq!(cfg.slicing.slice_count, 25);
    }

    #[test]
    fn store_shards_knob_defaults_and_clamps() {
        let cfg = NodeConfig::default();
        assert_eq!(cfg.store_shards, DEFAULT_STORE_SHARDS);
        assert_eq!(cfg.with_store_shards(0).effective_store_shards(), 1);
        assert_eq!(cfg.with_store_shards(16).effective_store_shards(), 16);
        assert_eq!(
            NodeConfig::for_system_size(100, 4).store_shards,
            DEFAULT_STORE_SHARDS
        );
    }

    #[test]
    fn intra_parameters_track_slice_size() {
        let few_slices = NodeConfig::for_system_size(3000, 10); // slice size 300
        let many_slices = NodeConfig::for_system_size(3000, 60); // slice size 50
        assert!(few_slices.pss.intra_view_size >= many_slices.pss.intra_view_size);
        assert!(few_slices.dissemination.intra_ttl >= many_slices.dissemination.intra_ttl);
    }
}
