//! Locally measured node attributes used by the slicing protocol.

use std::fmt;

/// The locally measured profile of a node.
///
/// The paper slices the system "according to the individual node storage
/// capacity. This allows that a certain node with less capacity is assigned
/// with less data to store. Any other criteria could be used, though." The
/// profile therefore carries the capacity attribute (in abstract storage
/// units) plus a tie-breaking nonce so that the total order used by the
/// ordered-slicing protocol is strict even when two nodes report the same
/// capacity.
///
/// # Example
///
/// ```
/// use dataflasks_types::NodeProfile;
///
/// let small = NodeProfile::with_capacity(100);
/// let large = NodeProfile::with_capacity(10_000);
/// assert!(small.capacity() < large.capacity());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeProfile {
    capacity: u64,
    tie_break: u64,
}

impl NodeProfile {
    /// Creates a profile with the given storage capacity (abstract units,
    /// e.g. number of objects the node is willing to hold).
    #[must_use]
    pub const fn with_capacity(capacity: u64) -> Self {
        Self {
            capacity,
            tie_break: 0,
        }
    }

    /// Creates a profile with an explicit tie-breaking nonce.
    ///
    /// The slicing protocol orders nodes by `(attribute, tie_break, node id)`
    /// so that the order is total even when capacities collide; deployments
    /// normally derive the nonce from the node identifier.
    #[must_use]
    pub const fn with_capacity_and_tie_break(capacity: u64, tie_break: u64) -> Self {
        Self {
            capacity,
            tie_break,
        }
    }

    /// The storage capacity attribute.
    #[must_use]
    pub const fn capacity(self) -> u64 {
        self.capacity
    }

    /// The tie-breaking nonce.
    #[must_use]
    pub const fn tie_break(self) -> u64 {
        self.tie_break
    }

    /// The value the slicing protocol sorts nodes by.
    ///
    /// Returned as a pair so that the ordering is lexicographic on
    /// `(capacity, tie_break)`.
    #[must_use]
    pub const fn slicing_attribute(self) -> (u64, u64) {
        (self.capacity, self.tie_break)
    }
}

impl Default for NodeProfile {
    /// A default profile with a mid-sized capacity of 1000 objects.
    fn default() -> Self {
        Self::with_capacity(1_000)
    }
}

impl fmt::Display for NodeProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "capacity={}", self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_roundtrip() {
        let p = NodeProfile::with_capacity(512);
        assert_eq!(p.capacity(), 512);
        assert_eq!(p.tie_break(), 0);
    }

    #[test]
    fn attribute_orders_by_capacity_then_tie_break() {
        let a = NodeProfile::with_capacity_and_tie_break(100, 5);
        let b = NodeProfile::with_capacity_and_tie_break(100, 9);
        let c = NodeProfile::with_capacity_and_tie_break(200, 0);
        assert!(a.slicing_attribute() < b.slicing_attribute());
        assert!(b.slicing_attribute() < c.slicing_attribute());
    }

    #[test]
    fn default_profile_is_nonzero() {
        assert!(NodeProfile::default().capacity() > 0);
    }

    #[test]
    fn display_mentions_capacity() {
        assert_eq!(NodeProfile::with_capacity(7).to_string(), "capacity=7");
    }
}
