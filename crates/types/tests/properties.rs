//! Property-based tests for the shared vocabulary types.

use dataflasks_types::{
    Duration, Key, SimTime, SliceId, SlicePartition, StoredObject, Value, Version,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every key maps to a slice index strictly below the slice count.
    #[test]
    fn slice_of_is_always_in_range(raw_key in any::<u64>(), k in 1u32..1024) {
        let partition = SlicePartition::new(k);
        let slice = partition.slice_of(Key::from_raw(raw_key));
        prop_assert!(slice.index() < k);
    }

    /// The slice ranges exactly tile the key space: a key belongs to slice s
    /// if and only if it lies within [range_start(s), range_end(s)].
    #[test]
    fn slice_ranges_tile_the_key_space(raw_key in any::<u64>(), k in 1u32..256) {
        let partition = SlicePartition::new(k);
        let key = Key::from_raw(raw_key);
        let slice = partition.slice_of(key);
        prop_assert!(key >= partition.range_start(slice));
        prop_assert!(key <= partition.range_end(slice));
        // No other slice owns the key.
        for other in 0..k {
            let other = SliceId::new(other);
            if other != slice {
                prop_assert!(!partition.owns(other, key));
            }
        }
    }

    /// Consecutive slices have adjacent, non-overlapping ranges.
    #[test]
    fn slice_ranges_are_adjacent(k in 2u32..256) {
        let partition = SlicePartition::new(k);
        for s in 0..k - 1 {
            let end = partition.range_end(SliceId::new(s)).as_u64();
            let next_start = partition.range_start(SliceId::new(s + 1)).as_u64();
            prop_assert_eq!(end + 1, next_start);
        }
        prop_assert_eq!(partition.range_start(SliceId::new(0)).as_u64(), 0);
        prop_assert_eq!(partition.range_end(SliceId::new(k - 1)).as_u64(), u64::MAX);
    }

    /// Rank-to-slice mapping is monotone: a larger rank never maps to a
    /// smaller slice.
    #[test]
    fn rank_mapping_is_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0, k in 1u32..128) {
        let partition = SlicePartition::new(k);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(partition.slice_of_rank(lo) <= partition.slice_of_rank(hi));
    }

    /// Hashing user keys is deterministic and stable.
    #[test]
    fn user_key_hashing_is_deterministic(user_key in "[a-z0-9:._-]{1,32}") {
        prop_assert_eq!(Key::from_user_key(&user_key), Key::from_user_key(&user_key));
    }

    /// Version ordering is the ordering of the underlying counter.
    #[test]
    fn version_ordering_matches_u64(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(Version::new(a) < Version::new(b), a < b);
        prop_assert_eq!(Version::new(a) == Version::new(b), a == b);
    }

    /// `supersedes` is a strict partial order restricted to equal keys.
    #[test]
    fn supersedes_is_strict(key in any::<u64>(), va in any::<u64>(), vb in any::<u64>()) {
        let a = StoredObject::new(Key::from_raw(key), Version::new(va), Value::from_bytes(b"a"));
        let b = StoredObject::new(Key::from_raw(key), Version::new(vb), Value::from_bytes(b"b"));
        // Irreflexive and antisymmetric.
        prop_assert!(!a.supersedes(&a));
        prop_assert!(!(a.supersedes(&b) && b.supersedes(&a)));
        prop_assert_eq!(a.supersedes(&b), va > vb);
    }

    /// Time arithmetic is consistent: advancing and measuring agree.
    #[test]
    fn time_arithmetic_roundtrips(start in 0u64..1_000_000_000, delta in 0u64..1_000_000) {
        let t0 = SimTime::from_millis(start);
        let t1 = t0 + Duration::from_millis(delta);
        prop_assert_eq!(t1 - t0, Duration::from_millis(delta));
        prop_assert_eq!(t1.saturating_since(t0).as_millis(), delta);
        prop_assert_eq!(t0.saturating_since(t1), Duration::ZERO);
    }

    /// Values preserve their payload bytes.
    #[test]
    fn value_preserves_bytes(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let value = Value::from(payload.clone());
        prop_assert_eq!(value.as_slice(), payload.as_slice());
        prop_assert_eq!(value.len(), payload.len());
    }
}
