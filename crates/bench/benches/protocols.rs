//! Micro-benchmarks of the protocol building blocks.
//!
//! These isolate the per-message cost of the three gossip protocols
//! (membership shuffle, slicing exchange, request dissemination step) so that
//! regressions in the hot path show up independently of the end-to-end
//! figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dataflasks::membership::{CyclonProtocol, NodeDescriptor, PeerSampling};
use dataflasks::prelude::*;
use dataflasks::slicing::OrderedSlicer;
use dataflasks::types::{PssConfig, SlicingConfig};

fn bench_cyclon_shuffle(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/cyclon_shuffle");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for view_size in [8usize, 20, 40] {
        group.bench_with_input(
            BenchmarkId::from_parameter(view_size),
            &view_size,
            |b, &view_size| {
                let cfg = PssConfig {
                    view_size,
                    shuffle_length: view_size / 2,
                    ..PssConfig::default()
                };
                let mut rng = StdRng::seed_from_u64(1);
                let mut a = CyclonProtocol::new(NodeId::new(1), cfg);
                let mut peer = CyclonProtocol::new(NodeId::new(2), cfg);
                a.bootstrap(
                    (2..2 + view_size as u64)
                        .map(|i| NodeDescriptor::new(NodeId::new(i), NodeProfile::default())),
                );
                peer.bootstrap(
                    (100..100 + view_size as u64)
                        .map(|i| NodeDescriptor::new(NodeId::new(i), NodeProfile::default())),
                );
                b.iter(|| {
                    if let Some((_, request)) = a.initiate_shuffle(&mut rng) {
                        let response = peer.handle_request(a.local_id(), request, &mut rng);
                        a.handle_response(response);
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_slicing_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/slicing_exchange");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for buffer in [32usize, 128, 512] {
        group.bench_with_input(
            BenchmarkId::from_parameter(buffer),
            &buffer,
            |b, &buffer| {
                let cfg = SlicingConfig {
                    sample_buffer_size: buffer,
                    ..SlicingConfig::default()
                };
                let partition = SlicePartition::new(10);
                let mut rng = StdRng::seed_from_u64(2);
                let mut a = OrderedSlicer::new(
                    NodeId::new(1),
                    NodeProfile::with_capacity(10),
                    cfg,
                    partition,
                );
                let mut peer = OrderedSlicer::new(
                    NodeId::new(2),
                    NodeProfile::with_capacity(20),
                    cfg,
                    partition,
                );
                for i in 0..buffer as u64 {
                    a.observe(NodeId::new(100 + i), NodeProfile::with_capacity(i));
                    peer.observe(NodeId::new(10_000 + i), NodeProfile::with_capacity(i * 2));
                }
                b.iter(|| {
                    a.advance_round();
                    let request = a.create_exchange(&mut rng);
                    let reply = peer.handle_exchange(request, &mut rng);
                    a.handle_reply(reply);
                    a.estimated_rank()
                });
            },
        );
    }
    group.finish();
}

fn bench_put_dissemination_step(c: &mut Criterion) {
    // Cost of one node handling a put it is responsible for (store + fanout).
    let mut group = c.benchmark_group("protocols/put_handling");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for fanout_nodes in [8usize, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(fanout_nodes),
            &fanout_nodes,
            |b, &fanout_nodes| {
                let config = NodeConfig::for_system_size(fanout_nodes * 4, 1);
                let mut node = DataFlasksNode::new(
                    NodeId::new(0),
                    config,
                    NodeProfile::default(),
                    MemoryStore::unbounded(),
                    3,
                );
                node.bootstrap((1..=fanout_nodes as u64).map(|i| {
                    NodeDescriptor::new(NodeId::new(i), NodeProfile::default())
                        .with_slice(Some(SliceId::new(0)))
                }));
                // One reusable effect buffer: steady-state handling allocates
                // nothing for the effect pipeline.
                let mut fx = EffectBuffer::new();
                let mut sequence = 0u64;
                b.iter(|| {
                    sequence += 1;
                    node.handle_client_request(
                        1,
                        ClientRequest::Put {
                            id: RequestId::new(1, sequence),
                            key: Key::from_raw(sequence.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                            version: Version::new(1),
                            value: Value::filled(128, 0xAB),
                        },
                        SimTime::ZERO,
                        &mut fx,
                    );
                    let effects = fx.len();
                    fx.clear();
                    effects
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    protocols,
    bench_cyclon_shuffle,
    bench_slicing_exchange,
    bench_put_dissemination_step
);
criterion_main!(protocols);
