//! Micro-benchmarks of the data-store substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dataflasks::prelude::*;

fn bench_memory_store_put_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/memory");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for value_size in [64usize, 1024] {
        group.bench_with_input(
            BenchmarkId::new("put", value_size),
            &value_size,
            |b, &value_size| {
                let mut store = MemoryStore::unbounded();
                let value = Value::filled(value_size, 0x5A);
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    store
                        .put(StoredObject::new(
                            Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                            Version::new(1),
                            value.clone(),
                        ))
                        .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("get", value_size),
            &value_size,
            |b, &value_size| {
                let mut store = MemoryStore::unbounded();
                let keys: Vec<Key> = (0..10_000u64)
                    .map(|i| Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                    .collect();
                for &key in &keys {
                    store
                        .put(StoredObject::new(
                            key,
                            Version::new(1),
                            Value::filled(value_size, 1),
                        ))
                        .unwrap();
                }
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % keys.len();
                    store.get_latest(keys[i])
                });
            },
        );
    }
    group.finish();
}

fn bench_log_store_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/log");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("put_128B", |b| {
        let dir = std::env::temp_dir().join(format!("dataflasks-bench-log-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut store = LogStore::open(&dir).unwrap();
        let value = Value::filled(128, 0x5A);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store
                .put(StoredObject::new(
                    Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    Version::new(1),
                    value.clone(),
                ))
                .unwrap()
        });
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    });
    group.finish();
}

fn bench_anti_entropy_digest(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/anti_entropy");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for keys in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("digest", keys), &keys, |b, &keys| {
            let mut store = MemoryStore::unbounded();
            for i in 0..keys as u64 {
                store
                    .put(StoredObject::new(
                        Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        Version::new(1),
                        Value::filled(32, 2),
                    ))
                    .unwrap();
            }
            b.iter(|| store.digest());
        });
        group.bench_with_input(
            BenchmarkId::new("diff_and_ship", keys),
            &keys,
            |b, &keys| {
                let mut ours = MemoryStore::unbounded();
                let mut theirs = MemoryStore::unbounded();
                for i in 0..keys as u64 {
                    let key = Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    ours.put(StoredObject::new(
                        key,
                        Version::new(2),
                        Value::filled(32, 2),
                    ))
                    .unwrap();
                    if i % 10 != 0 {
                        theirs
                            .put(StoredObject::new(
                                key,
                                Version::new(2),
                                Value::filled(32, 2),
                            ))
                            .unwrap();
                    }
                }
                let remote = theirs.digest();
                b.iter(|| ours.objects_newer_than(&remote, 256));
            },
        );
    }
    group.finish();
}

criterion_group!(
    store,
    bench_memory_store_put_get,
    bench_log_store_put,
    bench_anti_entropy_digest
);
criterion_main!(store);
