//! Micro-benchmarks of the data-store substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dataflasks::prelude::*;

fn bench_memory_store_put_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/memory");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for value_size in [64usize, 1024] {
        group.bench_with_input(
            BenchmarkId::new("put", value_size),
            &value_size,
            |b, &value_size| {
                let mut store = MemoryStore::unbounded();
                let value = Value::filled(value_size, 0x5A);
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    store
                        .put(&StoredObject::new(
                            Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                            Version::new(1),
                            value.clone(),
                        ))
                        .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("get", value_size),
            &value_size,
            |b, &value_size| {
                let mut store = MemoryStore::unbounded();
                let keys: Vec<Key> = (0..10_000u64)
                    .map(|i| Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                    .collect();
                for &key in &keys {
                    store
                        .put(&StoredObject::new(
                            key,
                            Version::new(1),
                            Value::filled(value_size, 1),
                        ))
                        .unwrap();
                }
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % keys.len();
                    store.get_latest(keys[i])
                });
            },
        );
    }
    group.finish();
}

fn bench_log_store_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/log");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("put_128B", |b| {
        let dir = std::env::temp_dir().join(format!("dataflasks-bench-log-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut store = LogStore::open(&dir).unwrap();
        let value = Value::filled(128, 0x5A);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store
                .put(&StoredObject::new(
                    Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    Version::new(1),
                    value.clone(),
                ))
                .unwrap()
        });
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    });
    group.finish();
}

fn bench_anti_entropy_digest(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/anti_entropy");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for keys in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("digest", keys), &keys, |b, &keys| {
            let mut store = MemoryStore::unbounded();
            for i in 0..keys as u64 {
                store
                    .put(&StoredObject::new(
                        Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        Version::new(1),
                        Value::filled(32, 2),
                    ))
                    .unwrap();
            }
            b.iter(|| store.digest());
        });
        group.bench_with_input(
            BenchmarkId::new("diff_and_ship", keys),
            &keys,
            |b, &keys| {
                let mut ours = MemoryStore::unbounded();
                let mut theirs = MemoryStore::unbounded();
                for i in 0..keys as u64 {
                    let key = Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    ours.put(&StoredObject::new(
                        key,
                        Version::new(2),
                        Value::filled(32, 2),
                    ))
                    .unwrap();
                    if i % 10 != 0 {
                        theirs
                            .put(&StoredObject::new(
                                key,
                                Version::new(2),
                                Value::filled(32, 2),
                            ))
                            .unwrap();
                    }
                }
                let remote = theirs.digest();
                b.iter(|| ours.objects_newer_than(&remote, 256));
            },
        );
    }
    group.finish();
}

/// Builds a flat store and a sharded store with identical contents: `keys`
/// objects spread uniformly over the whole key space.
fn paired_stores(keys: usize, shards: u32) -> (MemoryStore, ShardedStore) {
    let mut flat = MemoryStore::unbounded();
    let mut sharded = ShardedStore::new(shards);
    for i in 0..keys as u64 {
        let object = StoredObject::new(
            Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            Version::new(1),
            Value::filled(32, 2),
        );
        flat.put(&object).unwrap();
        sharded.put(&object).unwrap();
    }
    (flat, sharded)
}

/// Sharded vs unsharded scans: the anti-entropy digest, the bounded
/// shipping diff (early exit at the limit) and the steady-state
/// `retain_slice` (shards wholly inside the retained range are skipped).
fn bench_sharded_vs_unsharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/sharded");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for keys in [1_000usize, 10_000, 50_000] {
        let (flat, sharded) = paired_stores(keys, 16);
        group.bench_with_input(BenchmarkId::new("digest_flat", keys), &keys, |b, _| {
            b.iter(|| flat.digest())
        });
        group.bench_with_input(BenchmarkId::new("digest_sharded", keys), &keys, |b, _| {
            b.iter(|| sharded.digest())
        });
        // A stale remote digest: the initiator ships at most 256 objects.
        let remote = StoreDigest::new();
        group.bench_with_input(BenchmarkId::new("ship256_flat", keys), &keys, |b, _| {
            b.iter(|| flat.objects_newer_than(&remote, 256))
        });
        group.bench_with_input(BenchmarkId::new("ship256_sharded", keys), &keys, |b, _| {
            b.iter(|| sharded.objects_newer_than(&remote, 256))
        });
        // Steady-state slice scan: the node already migrated, so nothing is
        // dropped — the flat store still walks every key, the sharded store
        // skips every shard inside the slice range.
        let partition = SlicePartition::new(4);
        let slice = SliceId::new(1);
        let (mut flat_retained, mut sharded_retained) = paired_stores(keys, 16);
        flat_retained.retain_slice(partition, slice);
        sharded_retained.retain_slice(partition, slice);
        group.bench_with_input(BenchmarkId::new("retain_flat", keys), &keys, |b, _| {
            b.iter(|| flat_retained.retain_slice(partition, slice))
        });
        group.bench_with_input(BenchmarkId::new("retain_sharded", keys), &keys, |b, _| {
            b.iter(|| sharded_retained.retain_slice(partition, slice))
        });
    }
    group.finish();
}

/// Batched vs per-message delivery through the simulator's event queue: one
/// dispatch round emitting `per_dest` messages to each of `dests`
/// destinations, routed either as one queue entry per message or — after
/// [`EffectBuffer::coalesce_sends`] — as one entry per destination.
fn bench_batched_delivery(c: &mut Criterion) {
    use dataflasks::core::Message;
    use dataflasks::sim::{EventPayload, EventQueue};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    let mut group = c.benchmark_group("env/delivery");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dests = 8u64;
    let per_dest = 4usize;
    // A shared template: emitting clones an Arc, exactly like a relay.
    let template = Message::AntiEntropyDigest {
        digest: Arc::new(StoreDigest::new()),
        range: KeyRange::FULL,
    };
    let fill = |fx: &mut EffectBuffer| {
        for round in 0..per_dest {
            for to in 0..dests {
                let _ = round;
                fx.emit_send(NodeId::new(to), template.clone());
            }
        }
    };
    // The real per-transport-unit routing cost: one loss decision and one
    // latency sample per queue entry, exactly like `Simulation`'s routing.
    let network = NetworkConfig::default();
    let route = |queue: &mut EventQueue, rng: &mut StdRng, output: Output| match output {
        Output::Send { to, message } if !network.drops(rng) => {
            let latency = network.sample_latency(rng);
            queue.schedule(
                SimTime::ZERO + latency,
                EventPayload::Deliver {
                    from: NodeId::new(99),
                    to,
                    message,
                },
            );
        }
        Output::SendBatch { to, messages } if !network.drops(rng) => {
            let latency = network.sample_latency(rng);
            queue.schedule(
                SimTime::ZERO + latency,
                EventPayload::DeliverBatch {
                    from: NodeId::new(99),
                    to,
                    messages,
                },
            );
        }
        _ => {}
    };
    group.bench_function("unbatched_route_8x4", |b| {
        let mut fx = EffectBuffer::new();
        let mut queue = EventQueue::new();
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            fill(&mut fx);
            for output in fx.drain() {
                route(&mut queue, &mut rng, output);
            }
            while queue.pop().is_some() {}
        });
    });
    group.bench_function("batched_route_8x4", |b| {
        let mut fx = EffectBuffer::new();
        let mut queue = EventQueue::new();
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            fill(&mut fx);
            fx.coalesce_sends();
            for output in fx.drain() {
                route(&mut queue, &mut rng, output);
            }
            while queue.pop().is_some() {}
        });
    });
    group.finish();
}

criterion_group!(
    store,
    bench_memory_store_put_get,
    bench_log_store_put,
    bench_anti_entropy_digest,
    bench_sharded_vs_unsharded,
    bench_batched_delivery
);
criterion_main!(store);
