//! Figure 4 — average number of messages per node with the number of slices
//! proportional to the number of nodes (constant slice size, hence constant
//! replication factor), N ∈ {500, …, 3000}, YCSB write-only workload.
//!
//! Run with `cargo run -p dataflasks-bench --release --bin fig4`.
//! Optional arguments: a comma-separated list of node counts, e.g.
//! `fig4 100,200,400` for a reduced sweep.

use dataflasks_bench::{figure4_config, run_sweep, PAPER_NODE_COUNTS};

fn main() {
    let node_counts = parse_node_counts();
    let results = run_sweep(
        "Figure 4: messages per node, slices proportional to nodes (slice size 50), write-only workload",
        &node_counts,
        figure4_config,
    );
    let first = results.first().map(|r| r.request_messages_per_node.mean);
    let last = results.last().map(|r| r.request_messages_per_node.mean);
    if let (Some(first), Some(last)) = (first, last) {
        println!(
            "# shape check: {:.1} msgs/node at N={} vs {:.1} at N={} (paper: grows sub-linearly with N)",
            first,
            node_counts.first().unwrap(),
            last,
            node_counts.last().unwrap()
        );
    }
}

fn parse_node_counts() -> Vec<usize> {
    match std::env::args().nth(1) {
        Some(arg) => arg
            .split(',')
            .filter_map(|part| part.trim().parse().ok())
            .collect(),
        None => PAPER_NODE_COUNTS.to_vec(),
    }
}
