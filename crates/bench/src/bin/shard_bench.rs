//! Sharded-store and batched-delivery baseline: times the scans the
//! sharded store optimises (anti-entropy digest, bounded shipping diff,
//! steady-state slice scan) against the flat store, and per-destination
//! batched delivery against per-message delivery, then writes the medians
//! to `BENCH_shard.json` so successive PRs have a perf trajectory.
//!
//! ```bash
//! cargo run -p dataflasks-bench --release --bin shard_bench
//! ```

use std::sync::Arc;
use std::time::Instant;

use dataflasks::core::Message;
use dataflasks::prelude::*;
use dataflasks::sim::{EventPayload, EventQueue};

/// Shards used for every sharded measurement.
const SHARDS: u32 = 16;
/// Timed repetitions per measurement (the median is reported).
const REPS: usize = 7;

fn main() {
    let mut results: Vec<(String, f64)> = Vec::new();
    for &keys in &[1_000usize, 10_000, 50_000] {
        let (flat, sharded) = paired_stores(keys);
        results.push((
            format!("digest_flat_{keys}"),
            median_us(|| {
                std::hint::black_box(flat.digest());
            }),
        ));
        results.push((
            format!("digest_sharded_{keys}"),
            median_us(|| {
                std::hint::black_box(sharded.digest());
            }),
        ));
        let remote = StoreDigest::new();
        results.push((
            format!("ship256_flat_{keys}"),
            median_us(|| {
                std::hint::black_box(flat.objects_newer_than(&remote, 256));
            }),
        ));
        results.push((
            format!("ship256_sharded_{keys}"),
            median_us(|| {
                std::hint::black_box(sharded.objects_newer_than(&remote, 256));
            }),
        ));
        let partition = SlicePartition::new(4);
        let slice = SliceId::new(1);
        let (mut flat_retained, mut sharded_retained) = paired_stores(keys);
        flat_retained.retain_slice(partition, slice);
        sharded_retained.retain_slice(partition, slice);
        results.push((
            format!("retain_flat_{keys}"),
            median_us(|| {
                std::hint::black_box(flat_retained.retain_slice(partition, slice));
            }),
        ));
        results.push((
            format!("retain_sharded_{keys}"),
            median_us(|| {
                std::hint::black_box(sharded_retained.retain_slice(partition, slice));
            }),
        ));
    }
    results.push((
        "delivery_queue_unbatched_8x4_x1000".to_string(),
        median_us(|| deliver_round(false, 1_000)),
    ));
    results.push((
        "delivery_queue_batched_8x4_x1000".to_string(),
        median_us(|| deliver_round(true, 1_000)),
    ));
    results.push((
        "delivery_channel_unbatched_8x4_x1000".to_string(),
        median_us(|| channel_round(false, 1_000)),
    ));
    results.push((
        "delivery_channel_batched_8x4_x1000".to_string(),
        median_us(|| channel_round(true, 1_000)),
    ));

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"shards\": {SHARDS},\n  \"unit\": \"us\",\n"));
    for (i, (name, us)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{name}\": {us:.2}{comma}\n"));
        println!("{name}: {us:.2} us");
    }
    json.push_str("}\n");
    std::fs::write("BENCH_shard.json", json).expect("write BENCH_shard.json");
    println!("wrote BENCH_shard.json");
}

/// Identically filled flat and sharded stores.
fn paired_stores(keys: usize) -> (MemoryStore, ShardedStore) {
    let mut flat = MemoryStore::unbounded();
    let mut sharded = ShardedStore::new(SHARDS);
    for i in 0..keys as u64 {
        let object = StoredObject::new(
            Key::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            Version::new(1),
            Value::filled(32, 2),
        );
        flat.put(&object).unwrap();
        sharded.put(&object).unwrap();
    }
    (flat, sharded)
}

/// Median wall-clock microseconds of `routine` over [`REPS`] runs.
fn median_us<F: FnMut()>(mut routine: F) -> f64 {
    // One untimed warm-up.
    routine();
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_nanos() as f64 / 1_000.0
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Routes `rounds` dispatch rounds (4 messages to each of 8 destinations)
/// through the simulator's event queue, batched or per-message, paying the
/// real per-transport-unit routing cost (one loss decision and one latency
/// sample per queue entry, exactly like `Simulation`'s routing).
fn deliver_round(batched: bool, rounds: usize) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut fx = EffectBuffer::new();
    let mut queue = EventQueue::new();
    let network = NetworkConfig::default();
    let mut rng = StdRng::seed_from_u64(7);
    // A shared template: emitting clones an Arc, exactly like a relay.
    let template = Message::AntiEntropyDigest {
        digest: Arc::new(StoreDigest::new()),
        range: KeyRange::FULL,
    };
    for _ in 0..rounds {
        for round in 0..4 {
            for to in 0..8u64 {
                let _ = round;
                fx.emit_send(NodeId::new(to), template.clone());
            }
        }
        if batched {
            fx.coalesce_sends();
        }
        for output in fx.drain() {
            match output {
                Output::Send { to, message } => {
                    if network.drops(&mut rng) {
                        continue;
                    }
                    let latency = network.sample_latency(&mut rng);
                    queue.schedule(
                        SimTime::ZERO + latency,
                        EventPayload::Deliver {
                            from: NodeId::new(99),
                            to,
                            message,
                        },
                    );
                }
                Output::SendBatch { to, messages } => {
                    if network.drops(&mut rng) {
                        continue;
                    }
                    let latency = network.sample_latency(&mut rng);
                    queue.schedule(
                        SimTime::ZERO + latency,
                        EventPayload::DeliverBatch {
                            from: NodeId::new(99),
                            to,
                            messages,
                        },
                    );
                }
                _ => {}
            }
        }
        while queue.pop().is_some() {}
    }
}

/// The threaded-runtime transport: one channel send per transport unit.
/// Unbatched sends every message individually; batched coalesces the round
/// per destination first — one send (and one routing lookup) per
/// destination, matching `ThreadedCluster`'s router.
fn channel_round(batched: bool, rounds: usize) {
    use std::collections::HashMap;
    use std::sync::mpsc;

    enum Unit {
        One(Message),
        Many(Vec<Message>),
    }
    let inboxes: HashMap<NodeId, (mpsc::Sender<Unit>, mpsc::Receiver<Unit>)> = (0..8u64)
        .map(|i| (NodeId::new(i), mpsc::channel()))
        .collect();
    let mut fx = EffectBuffer::new();
    let mut handled = 0usize;
    let template = Message::AntiEntropyDigest {
        digest: Arc::new(StoreDigest::new()),
        range: KeyRange::FULL,
    };
    for _ in 0..rounds {
        for round in 0..4 {
            for to in 0..8u64 {
                let _ = round;
                fx.emit_send(NodeId::new(to), template.clone());
            }
        }
        if batched {
            fx.coalesce_sends();
        }
        for output in fx.drain() {
            match output {
                Output::Send { to, message } => {
                    let _ = inboxes[&to].0.send(Unit::One(message));
                }
                Output::SendBatch { to, messages } => {
                    let _ = inboxes[&to].0.send(Unit::Many(messages));
                }
                _ => {}
            }
        }
        for (_, (_, rx)) in inboxes.iter() {
            while let Ok(unit) = rx.try_recv() {
                match unit {
                    Unit::One(message) => {
                        std::hint::black_box(&message);
                        handled += 1;
                    }
                    Unit::Many(messages) => {
                        for message in &messages {
                            std::hint::black_box(message);
                            handled += 1;
                        }
                    }
                }
            }
        }
    }
    std::hint::black_box(handled);
}
