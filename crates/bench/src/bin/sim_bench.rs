//! Simulator scaling baseline: drives a seeded churn + workload scenario
//! through the deterministic discrete-event `Simulation` at each node count
//! of a sweep and writes event throughput, wall-time-per-simulated-second,
//! spawn time and peak RSS to `BENCH_sim.json` — the artifact backing the
//! paper's 100k-node massive-scale regime.
//!
//! Each sweep row runs in a **subprocess** so its peak RSS is its own (the
//! kernel's high-water mark is monotone within a process) and a row that
//! exhausts the host cannot take the whole sweep down with it.
//!
//! ```bash
//! cargo run -p dataflasks-bench --release --bin sim_bench
//! # CI smoke: the 10k row only, reduced workload
//! cargo run -p dataflasks-bench --release --bin sim_bench -- \
//!     --rows 10000 --puts 200 --gets 200
//! ```

use std::time::Instant;

use dataflasks::prelude::*;
use dataflasks_bench::{write_sweep_json, SweepRow};

/// Per-row metrics, in emission order. The parent process maps subprocess
/// output back onto these `'static` names.
const ROW_FIELDS: &[&str] = &[
    "nodes",
    "slices",
    "spawn_ms",
    "spawn_ms_per_node",
    "sim_seconds",
    "run_wall_ms",
    "wall_ms_per_sim_s",
    "events_dispatched",
    "events_per_s",
    "timer_fires",
    "messages_delivered",
    "messages_dropped",
    "crashes",
    "joins",
    "alive_end",
    "puts_submitted",
    "puts_completed",
    "gets_submitted",
    "gets_answered",
    "get_hits",
    "peak_rss_kb",
];

/// The pre-slab, pre-wheel baseline this artifact's `history` header
/// records: every protocol timer funnelled through the global event heap
/// (with a `HashMap` generation probe per fire), nodes addressed through
/// `HashMap<NodeId, SimNode>`, and a fresh alive-list clone per client
/// operation. Measured on the same host, same seeded 10k-node schedule.
const PRE_SLAB_HISTORY: &str = concat!(
    "{\n",
    "    \"heap_timers_hashmap_nodes\": {\n",
    "      \"nodes\": 10000,\n",
    "      \"spawn_ms\": 2767,\n",
    "      \"sim_seconds\": 105,\n",
    "      \"run_wall_ms\": 109970,\n",
    "      \"wall_ms_per_sim_s\": 1047.33,\n",
    "      \"events_dispatched\": 8567913,\n",
    "      \"events_per_s\": 77911.37,\n",
    "      \"peak_rss_kb\": 1803488\n",
    "    }\n",
    "  }"
);

struct Args {
    rows: Vec<usize>,
    puts: usize,
    gets: usize,
    churn_pct: usize,
    warmup_s: u64,
    slice_nodes: usize,
    seed: u64,
    out: String,
    one_row: Option<usize>,
    legacy_spawn: bool,
}

impl Args {
    fn parse() -> Self {
        let mut args = Self {
            rows: vec![10_000, 50_000, 100_000],
            puts: 800,
            gets: 800,
            churn_pct: 1,
            warmup_s: 60,
            slice_nodes: 200,
            seed: 0x51B3,
            out: "BENCH_sim.json".to_string(),
            one_row: None,
            legacy_spawn: false,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            let mut take = |target: &mut usize| {
                *target = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{flag} needs a numeric value"));
            };
            match flag.as_str() {
                "--puts" => take(&mut args.puts),
                "--gets" => take(&mut args.gets),
                "--churn-pct" => take(&mut args.churn_pct),
                "--warmup-s" => {
                    let mut v = 0usize;
                    take(&mut v);
                    args.warmup_s = v as u64;
                }
                "--slice-nodes" => take(&mut args.slice_nodes),
                "--seed" => {
                    let mut v = 0usize;
                    take(&mut v);
                    args.seed = v as u64;
                }
                "--rows" => {
                    let list = iter
                        .next()
                        .unwrap_or_else(|| panic!("--rows needs 10000,50000"));
                    args.rows = list
                        .split(',')
                        .map(|n| n.parse().expect("--rows takes node counts"))
                        .collect();
                    assert!(!args.rows.is_empty(), "--rows must name a node count");
                }
                "--out" => args.out = iter.next().expect("--out needs a path"),
                "--one-row" => {
                    let mut v = 0usize;
                    take(&mut v);
                    args.one_row = Some(v);
                }
                "--legacy-spawn" => args.legacy_spawn = true,
                other => panic!("unknown flag {other}"),
            }
        }
        args
    }

    /// The flags a child row process needs to reproduce this configuration.
    fn child_flags(&self, nodes: usize) -> Vec<String> {
        let mut flags = vec![
            "--one-row".to_string(),
            nodes.to_string(),
            "--puts".to_string(),
            self.puts.to_string(),
            "--gets".to_string(),
            self.gets.to_string(),
            "--churn-pct".to_string(),
            self.churn_pct.to_string(),
            "--warmup-s".to_string(),
            self.warmup_s.to_string(),
            "--slice-nodes".to_string(),
            self.slice_nodes.to_string(),
            "--seed".to_string(),
            self.seed.to_string(),
        ];
        if self.legacy_spawn {
            flags.push("--legacy-spawn".to_string());
        }
        flags
    }
}

fn main() {
    let args = Args::parse();
    if let Some(nodes) = args.one_row {
        // Child mode: run one row in-process and print it as parseable lines.
        for (name, value) in run_row(&args, nodes) {
            println!("SIMROW {name} {value}");
        }
        return;
    }

    let exe = std::env::current_exe().expect("current_exe");
    let rows: Vec<SweepRow> = args
        .rows
        .iter()
        .map(|&nodes| {
            println!("--- sim_bench row: {nodes} nodes ---");
            let output = std::process::Command::new(&exe)
                .args(args.child_flags(nodes))
                .output()
                .expect("spawn sim_bench row subprocess");
            let stdout = String::from_utf8_lossy(&output.stdout);
            print!("{stdout}");
            assert!(
                output.status.success(),
                "row subprocess for {nodes} nodes failed: {}",
                String::from_utf8_lossy(&output.stderr)
            );
            parse_row(&stdout)
        })
        .collect();

    write_sweep_json(
        &args.out,
        &[
            ("seed", args.seed.to_string()),
            ("churn_pct", args.churn_pct.to_string()),
            ("history", PRE_SLAB_HISTORY.to_string()),
        ],
        &rows,
    );
    for row in &rows {
        let metric = |name: &str| -> f64 {
            row.iter()
                .find(|(n, _)| *n == name)
                .map_or(0.0, |(_, v)| *v)
        };
        println!(
            "nodes {:>7}: {:>10.0} events/s, {:>7.1} wall-ms per sim-s, spawn {:>6.0} ms, peak RSS {:>8.0} kB",
            metric("nodes"),
            metric("events_per_s"),
            metric("wall_ms_per_sim_s"),
            metric("spawn_ms"),
            metric("peak_rss_kb"),
        );
    }
}

/// Maps `SIMROW name value` subprocess lines back onto the static field
/// names (order and completeness are asserted, so a schema drift between
/// parent and child fails loudly).
fn parse_row(stdout: &str) -> SweepRow {
    let mut row = SweepRow::new();
    for line in stdout.lines() {
        let Some(rest) = line.strip_prefix("SIMROW ") else {
            continue;
        };
        let mut parts = rest.split_whitespace();
        let name = parts.next().expect("SIMROW line has a metric name");
        let value: f64 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .expect("SIMROW line has a numeric value");
        let field = ROW_FIELDS
            .iter()
            .find(|f| **f == name)
            .unwrap_or_else(|| panic!("unknown sim_bench row field {name}"));
        row.push((*field, value));
    }
    assert_eq!(
        row.len(),
        ROW_FIELDS.len(),
        "row subprocess emitted an incomplete metric set"
    );
    row
}

/// Runs the seeded churn + workload scenario at `nodes` nodes and returns
/// the row. The schedule is identical at every scale (fixed operation count,
/// churn proportional to the cluster): warm-up, a churn window with the
/// write workload riding on it, reads against the written keys, drain.
fn run_row(args: &Args, nodes: usize) -> SweepRow {
    // Constant slice size (~200 nodes by default), protocol periods at their
    // defaults (1 s shuffle and gossip, 5 s anti-entropy). A slightly wider
    // global fanout than the figure experiments (4 vs 3) keeps the epidemic
    // slice search reliable at these scales: with fanout 3 the TTL-bounded
    // walk strands ~1/3 of requests short of a 50-node slice at 10k nodes,
    // while fanout 4 over 200-node slices answers every operation up to 100k.
    let slices = (nodes / args.slice_nodes).max(2) as u32;
    let mut config = NodeConfig::for_system_size(nodes, slices);
    config.dissemination.global_fanout = 4;

    // A short client timeout so any miss resolves well inside the drain
    // window: every get reaches a terminal state (hit or miss) by the end of
    // the schedule, which is what check_bench's completion guard verifies.
    let mut sim = Simulation::new(SimConfig {
        seed: args.seed ^ ((nodes as u64) << 32),
        client_timeout: Duration::from_secs(5),
        ..SimConfig::default()
    });

    let spawn_start = Instant::now();
    spawn(args, &mut sim, nodes, config);
    let spawn_ms = spawn_start.elapsed().as_millis();
    println!("spawned {nodes} nodes ({slices} slices) in {spawn_ms} ms");

    // Warm-up: bootstrap views widen and slice estimates settle enough for
    // request routing (60 s, like the figure experiments; the scenario then
    // measures the converged system under churn — the paper's regime).
    let run_start = Instant::now();
    sim.run_for(Duration::from_secs(args.warmup_s));

    // Churn window: `churn_pct` percent of the cluster crashes and as many
    // fresh nodes join, spread over 20 s.
    let churn = nodes * args.churn_pct / 100;
    let churn_start = sim.now();
    sim.schedule_churn(
        churn_start,
        churn_start + Duration::from_secs(20),
        churn,
        churn,
    );

    // The write workload rides on the churn window; reads follow their key's
    // write by 15 s, comfortably after dissemination.
    let client = sim.add_client();
    let key_of = |i: usize| Key::from_user_key(&format!("sim-bench-{i}"));
    let put_gap_ms = 20_000 / args.puts.max(1) as u64;
    for i in 0..args.puts {
        sim.schedule_put(
            churn_start + Duration::from_millis(i as u64 * put_gap_ms),
            client,
            key_of(i),
            Version::new(1),
            Value::filled(128, 7),
        );
    }
    let get_gap_ms = 20_000 / args.gets.max(1) as u64;
    for i in 0..args.gets {
        sim.schedule_get(
            churn_start + Duration::from_secs(15) + Duration::from_millis(i as u64 * get_gap_ms),
            client,
            key_of(i % args.puts.max(1)),
            None,
        );
    }

    // Churn + writes (20 s), reads (15–35 s), drain to 45 s — enough past
    // the last get for every straggler to hit its 5 s client timeout.
    sim.run_for(Duration::from_secs(45));
    let run_wall_ms = run_start.elapsed().as_millis();
    let sim_seconds = args.warmup_s + 45;

    let stats = sim.client(client).expect("bench client registered").stats();
    let populations = sim.slice_populations();
    eprintln!(
        "[nodes {nodes}] populated slices {} of {slices}, population min {} max {}, timeouts {}",
        populations.len(),
        populations.iter().map(|&(_, n)| n).min().unwrap_or(0),
        populations.iter().map(|&(_, n)| n).max().unwrap_or(0),
        stats.timeouts,
    );
    let events = sim.events_dispatched();
    let events_per_s = events as f64 / (run_wall_ms as f64 / 1_000.0).max(1e-9);
    let row = vec![
        ("nodes", nodes as f64),
        ("slices", slices as f64),
        ("spawn_ms", spawn_ms as f64),
        ("spawn_ms_per_node", spawn_ms as f64 / nodes.max(1) as f64),
        ("sim_seconds", sim_seconds as f64),
        ("run_wall_ms", run_wall_ms as f64),
        ("wall_ms_per_sim_s", run_wall_ms as f64 / sim_seconds as f64),
        ("events_dispatched", events as f64),
        ("events_per_s", events_per_s),
        ("timer_fires", sim.timer_fires() as f64),
        ("messages_delivered", sim.messages_delivered() as f64),
        ("messages_dropped", sim.messages_dropped() as f64),
        ("crashes", churn as f64),
        ("joins", churn as f64),
        ("alive_end", sim.alive_count() as f64),
        ("puts_submitted", args.puts as f64),
        ("puts_completed", stats.puts_acked as f64),
        ("gets_submitted", args.gets as f64),
        ("gets_answered", (stats.gets_hit + stats.gets_missed) as f64),
        ("get_hits", stats.gets_hit as f64),
        ("peak_rss_kb", peak_rss_kb() as f64),
    ];
    for (name, value) in &row {
        println!("[nodes {nodes}] {name}: {value:.2}");
    }
    row
}

fn spawn(args: &Args, sim: &mut Simulation, nodes: usize, config: NodeConfig) {
    if args.legacy_spawn {
        // Serial one-node-at-a-time spawn (the pre-parallel baseline). Its
        // capacities come from a side stream so the loop matches the default
        // path's draws; the node seeds still differ, so the two paths produce
        // different (each internally deterministic) runs.
        use rand::{Rng, SeedableRng};
        let mut capacities = rand::rngs::StdRng::seed_from_u64(args.seed ^ 0xCAFE);
        for _ in 0..nodes {
            let capacity = capacities.gen_range(100..=10_000);
            sim.spawn_node(config, capacity);
        }
        return;
    }
    sim.spawn_cluster(nodes, config);
}

/// The process's peak resident set in kB (`VmHWM`), or 0 where
/// `/proc/self/status` is unavailable (non-Linux hosts).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| {
            line.strip_prefix("VmHWM:")?
                .trim()
                .trim_end_matches(" kB")
                .parse()
                .ok()
        })
        .unwrap_or(0)
}
