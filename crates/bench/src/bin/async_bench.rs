//! Async-runtime scaling baseline: hosts a multi-thousand-node DataFlasks
//! cluster on the event-driven `AsyncCluster` (sharded work-stealing
//! scheduler, framed transport, per-worker timer wheels), drives a put/get
//! workload through it at each worker count of a sweep, and writes
//! throughput and latency medians to `BENCH_async.json` so successive PRs
//! have a scaling trajectory. The `workers = 1` row is the baseline the
//! multi-worker rows are judged against.
//!
//! ```bash
//! cargo run -p dataflasks-bench --release --bin async_bench
//! # CI smoke: fewer operations, same 2000-node cluster, same sweep
//! cargo run -p dataflasks-bench --release --bin async_bench -- \
//!     --puts 150 --gets 150 --latency-ops 40
//! ```

use std::collections::HashSet;
use std::time::Instant;

use dataflasks::core::{ClientRequest, Environment, ReplyBody};
use dataflasks::prelude::*;
use dataflasks_bench::{
    await_completions, percentile, print_scaling_summary, write_sweep_json, SweepRow,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Args {
    nodes: usize,
    slices: u32,
    sweep: Vec<usize>,
    mailbox: usize,
    puts: usize,
    gets: usize,
    latency_ops: usize,
}

impl Args {
    fn parse() -> Self {
        let mut args = Self {
            nodes: 2_000,
            slices: 0, // 0 = derive (≈50 nodes per slice)
            sweep: vec![1, 2, 4, 8],
            mailbox: 0,
            puts: 400,
            gets: 400,
            latency_ops: 100,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            let mut take = |target: &mut usize| {
                *target = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{flag} needs a numeric value"));
            };
            match flag.as_str() {
                "--nodes" => take(&mut args.nodes),
                "--mailbox" => take(&mut args.mailbox),
                "--puts" => take(&mut args.puts),
                "--gets" => take(&mut args.gets),
                "--latency-ops" => take(&mut args.latency_ops),
                "--workers" => {
                    // A single-point "sweep" for quick ad-hoc runs.
                    let mut v = 0usize;
                    take(&mut v);
                    args.sweep = vec![v];
                }
                "--sweep" => {
                    let list = iter.next().unwrap_or_else(|| panic!("--sweep needs 1,2,4"));
                    args.sweep = list
                        .split(',')
                        .map(|w| w.parse().expect("--sweep takes worker counts"))
                        .collect();
                    assert!(!args.sweep.is_empty(), "--sweep must name a worker count");
                }
                "--slices" => {
                    let mut v = 0usize;
                    take(&mut v);
                    args.slices = v as u32;
                }
                other => panic!("unknown flag {other}"),
            }
        }
        if args.slices == 0 {
            args.slices = (args.nodes as u32 / 50).max(2);
        }
        args
    }
}

const CLIENT: u64 = 7;

fn main() {
    let args = Args::parse();
    // Paper-style configuration. The periodic substrate runs at two-second
    // gossip: every sweep row (sub-second workloads after the parallel
    // spawn) still measures with live timer-wheel traffic competing with
    // requests, without 2000 shuffles per second drowning a small host.
    let mut config = NodeConfig::for_system_size(args.nodes, args.slices);
    config.pss.shuffle_period = Duration::from_secs(2);
    config.slicing.gossip_period = Duration::from_secs(4);
    config.replication.anti_entropy_period = Duration::from_secs(10);
    let mut capacity_rng = StdRng::seed_from_u64(0xA57C);
    let capacities: Vec<u64> = (0..args.nodes)
        .map(|_| capacity_rng.gen_range(100..=10_000))
        .collect();
    let spec = ClusterSpec::new(config, capacities, 0xA57C);

    // Contact selection models the repo's warmed slice-aware load balancer
    // (`LoadBalancer` + `ClientLibrary`): requests go to a member of the
    // key's responsible slice, chosen uniformly — the steady state the
    // paper's client library converges to after a few replies. The plan is
    // shared by every sweep row (the spec is deterministic).
    let plan = spec.build_nodes();
    let partition = plan[0].partition();
    let mut members_by_slice: Vec<Vec<NodeId>> = vec![Vec::new(); args.slices as usize];
    for node in &plan {
        if let Some(slice) = node.slice() {
            members_by_slice[slice.index() as usize].push(node.id());
        }
    }
    drop(plan);
    for (index, members) in members_by_slice.iter().enumerate() {
        assert!(
            !members.is_empty(),
            "slice {index} has no members: the --nodes/--slices ratio leaves \
             slices unpopulated; use at least ~25 nodes per slice"
        );
    }

    let rows: Vec<SweepRow> = args
        .sweep
        .iter()
        .map(|&workers| run_row(&args, &spec, partition, &members_by_slice, workers))
        .collect();

    write_sweep_json(
        "BENCH_async.json",
        &[
            // Closed-loop: each blocking operation waits out the previous
            // one, so the sweep measures latency under light load, not
            // capacity — BENCH_openloop.json carries the capacity numbers.
            ("workload_mode", "\"closed_loop_latency_bound\"".to_string()),
            ("nodes", args.nodes.to_string()),
            ("slices", args.slices.to_string()),
            ("mailbox_capacity", args.mailbox.to_string()),
        ],
        &rows,
    );
    print_scaling_summary(&rows, "");
}

/// Runs the whole workload once at `workers` workers and returns the row.
fn run_row(
    args: &Args,
    spec: &ClusterSpec,
    partition: SlicePartition,
    members_by_slice: &[Vec<NodeId>],
    workers: usize,
) -> SweepRow {
    let mut rng = StdRng::seed_from_u64(0xA57C ^ (workers as u64) << 32);
    let spawn_start = Instant::now();
    let mut cluster = AsyncCluster::start_spec_with(
        spec,
        AsyncClusterConfig {
            workers,
            mailbox_capacity: args.mailbox,
            ..AsyncClusterConfig::default()
        },
    );
    let spawn_ms = spawn_start.elapsed().as_millis();
    let timings = cluster.spawn_timings();
    let workers = cluster.worker_count();
    assert!(workers <= 8, "the scaling claim is ≤8 worker threads");
    cluster.set_drain_idle_grace(Duration::from_millis(100));
    println!(
        "spawned {} nodes ({} slices) on {workers} workers in {spawn_ms} ms \
         (build {} ms, arm {} ms)",
        args.nodes,
        args.slices,
        timings.build.as_millis(),
        timings.arm.as_millis(),
    );

    // Let the staggered first gossip rounds start flowing (a bit over one
    // shuffle period, so every row measures with the substrate live).
    std::thread::sleep(std::time::Duration::from_millis(2_300));

    let contact_for = |key: Key, rng: &mut StdRng| -> NodeId {
        let members = &members_by_slice[partition.slice_of(key).index() as usize];
        members[rng.gen_range(0..members.len())]
    };

    // --- Pipelined put throughput ---------------------------------------
    let key_of = |i: usize| Key::from_user_key(&format!("bench-{workers}-{i}"));
    let put_start = Instant::now();
    for i in 0..args.puts {
        let key = key_of(i);
        let contact = contact_for(key, &mut rng);
        cluster.submit_client_request(
            CLIENT,
            contact,
            ClientRequest::Put {
                id: RequestId::new(CLIENT, i as u64),
                key,
                version: Version::new(1),
                value: Value::filled(128, 7),
            },
        );
    }
    let (put_acked, put_elapsed) = await_completions(&mut cluster, put_start, args.puts, |reply| {
        matches!(reply.body, ReplyBody::PutAck { .. })
    });
    let put_throughput = put_acked as f64 / put_elapsed.as_secs_f64();

    // --- Pipelined get throughput ----------------------------------------
    let get_start = Instant::now();
    for i in 0..args.gets {
        let key = key_of(i % args.puts.max(1));
        let contact = contact_for(key, &mut rng);
        cluster.submit_client_request(
            CLIENT,
            contact,
            ClientRequest::Get {
                id: RequestId::new(CLIENT, (args.puts + i) as u64),
                key,
                version: None,
            },
        );
    }
    // A get is *answered* once any responsible replica replies (hit or
    // miss); hits are tracked separately — epidemic replication coverage is
    // what decides whether the contacted subgraph holds the object.
    let mut get_hits: HashSet<RequestId> = HashSet::new();
    let (get_answered, get_elapsed) = {
        let hits = &mut get_hits;
        await_completions(&mut cluster, get_start, args.gets, |reply| {
            match reply.body {
                ReplyBody::GetHit { .. } => {
                    hits.insert(reply.request);
                    true
                }
                ReplyBody::GetMiss { .. } => true,
                ReplyBody::PutAck { .. } => false,
            }
        })
    };
    let get_throughput = get_answered as f64 / get_elapsed.as_secs_f64();

    // --- Blocking-API latency --------------------------------------------
    let mut put_lat_us = Vec::with_capacity(args.latency_ops);
    let mut get_lat_us = Vec::with_capacity(args.latency_ops);
    // Slice-aware blocking round trips: submit to a responsible contact
    // (the warmed-load-balancer pattern, like the throughput phases) and
    // time submit→first-reply. A retry guards the rare in-slice expiry.
    let with_retries = |mut op: Box<dyn FnMut() -> bool + '_>| -> f64 {
        for _ in 0..8 {
            let start = Instant::now();
            if op() {
                return start.elapsed().as_nanos() as f64 / 1_000.0;
            }
        }
        panic!("operation failed eight attempts in a row");
    };
    for i in 0..args.latency_ops {
        let key = Key::from_user_key(&format!("lat-{workers}-{i}"));
        let contact = contact_for(key, &mut rng);
        put_lat_us.push(with_retries(Box::new(|| {
            cluster
                .put_via(
                    contact,
                    key,
                    Version::new(1),
                    Value::filled(128, 9),
                    Duration::from_secs(5),
                )
                .is_ok()
        })));
        get_lat_us.push(with_retries(Box::new(|| {
            matches!(
                cluster.get_via(contact, key, None, Duration::from_secs(5)),
                Ok(Some(_))
            )
        })));
    }

    // --- Substrate sanity + teardown --------------------------------------
    let saturations = cluster.saturation_events();
    let nodes = cluster.shutdown();
    let gossip_messages: u64 = nodes
        .iter()
        .map(|n| n.stats().sent(MessageKind::Membership) + n.stats().sent(MessageKind::Slicing))
        .sum();
    let ae_skipped: u64 = nodes.iter().map(|n| n.stats().ae_chunks_skipped).sum();
    let stored_keys: usize = nodes
        .iter()
        .map(|n| dataflasks::store::DataStore::len(n.store()))
        .sum();
    assert!(
        put_acked > 0 && get_answered > 0,
        "a sweep row completed zero operations (workers {workers})"
    );
    // The warm-up sleep outlives one shuffle period, so every row — smoke
    // included — must show periodic traffic from the timer wheels.
    assert!(
        gossip_messages > 0,
        "the periodic substrate must have run on the timer wheels"
    );

    let results = vec![
        ("workers", workers as f64),
        ("spawn_ms", spawn_ms as f64),
        ("spawn_build_ms", timings.build.as_millis() as f64),
        ("spawn_arm_ms", timings.arm.as_millis() as f64),
        (
            "spawn_ms_per_node",
            spawn_ms as f64 / (args.nodes.max(1)) as f64,
        ),
        ("puts_submitted", args.puts as f64),
        ("puts_completed", put_acked as f64),
        ("put_throughput_ops_per_s", put_throughput),
        ("gets_submitted", args.gets as f64),
        ("gets_answered", get_answered as f64),
        ("get_hits", get_hits.len() as f64),
        ("get_throughput_ops_per_s", get_throughput),
        ("put_latency_p50_us", percentile(&mut put_lat_us, 0.50)),
        ("put_latency_p99_us", percentile(&mut put_lat_us, 0.99)),
        ("put_latency_p999_us", percentile(&mut put_lat_us, 0.999)),
        ("get_latency_p50_us", percentile(&mut get_lat_us, 0.50)),
        ("get_latency_p99_us", percentile(&mut get_lat_us, 0.99)),
        ("get_latency_p999_us", percentile(&mut get_lat_us, 0.999)),
        ("mailbox_saturations", saturations as f64),
        ("gossip_messages", gossip_messages as f64),
        ("ae_chunks_skipped", ae_skipped as f64),
        ("replica_objects_total", stored_keys as f64),
    ];
    for (name, value) in &results {
        println!("[workers {workers}] {name}: {value:.2}");
    }
    results
}
