//! Robustness benchmark: seeded nemesis schedules against the simulator
//! and the socket runtime, audited by the cross-backend
//! [`InvariantChecker`] — the artifact proves the cluster *survives* the
//! paper's headline regime (churn storms plus partitions), not that it is
//! fast under it.
//!
//! Rows of `BENCH_nemesis.json`:
//!
//! * `sim_replay` — the churn-and-partition scenario run **twice** with the
//!   same seed on a 1000-node simulation; the row is only emitted after the
//!   two traces (per-node stats and simulator counters) compare equal
//!   (`replayed_identically = 1`).
//! * `sim_churn_partition` — the acceptance scenario: a 10000-node
//!   simulation through churn storms and a split-brain partition, with a
//!   client workload riding the fault span. Reports availability under
//!   fault, anti-entropy rounds to convergence after the final heal, and
//!   the injected-fault counters.
//! * `socket_faults` — a loopback socket cluster (220 nodes tracked, 60 in
//!   `--smoke`) through a partition + loss + duplication window, a
//!   post-heal convergence probe, and one-at-a-time frame corruption that
//!   must surface as exactly one `wire_rejects` each.
//!
//! Every row carries `invariant_violations`, which must be zero — the bin
//! prints the checker report and exits nonzero otherwise, and
//! `ci/check_bench.sh` independently rejects a nonzero value in the
//! artifact.
//!
//! ```bash
//! cargo run -p dataflasks-bench --release --bin nemesis_bench
//! # CI smoke: the 10k sim acceptance row plus a 60-node socket row
//! cargo run -p dataflasks-bench --release --bin nemesis_bench -- --smoke
//! ```

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use dataflasks::core::{ClientRequest, Environment, OperationOutcome, ReplyBody};
use dataflasks::prelude::*;
use dataflasks::store::DataStore;
use dataflasks_bench::{await_completions, write_raw_sweep_json, RawSweepRow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0xD7_5EED;
const CLIENT: u64 = 7;

/// Everything one scenario reports; rendered into one artifact row.
struct RowMetrics {
    scenario: &'static str,
    nodes: usize,
    acked_puts: u64,
    /// Fraction of the client operations *submitted while faults were
    /// active* that completed successfully (acked puts and hit gets).
    availability_under_fault: f64,
    /// Anti-entropy rounds from the final heal to convergence
    /// (`budget + 1` when the budget was exhausted — which also records a
    /// bounded-convergence violation).
    convergence_rounds: usize,
    rounds_budget: usize,
    invariant_checks: u64,
    invariant_violations: usize,
    frames_dropped_injected: u64,
    frames_duplicated_injected: u64,
    partition_refusals: u64,
    corrupt_injected: u64,
    wire_rejects: u64,
    replayed_identically: u64,
    wall_ms: u128,
    report: String,
}

impl RowMetrics {
    fn render(&self) -> RawSweepRow {
        vec![
            ("scenario", format!("\"{}\"", self.scenario)),
            ("nodes", self.nodes.to_string()),
            ("acked_puts", self.acked_puts.to_string()),
            (
                "availability_under_fault",
                format!("{:.2}", self.availability_under_fault),
            ),
            ("convergence_rounds", self.convergence_rounds.to_string()),
            ("rounds_budget", self.rounds_budget.to_string()),
            ("invariant_checks", self.invariant_checks.to_string()),
            (
                "invariant_violations",
                self.invariant_violations.to_string(),
            ),
            (
                "frames_dropped_injected",
                self.frames_dropped_injected.to_string(),
            ),
            (
                "frames_duplicated_injected",
                self.frames_duplicated_injected.to_string(),
            ),
            ("partition_refusals", self.partition_refusals.to_string()),
            ("corrupt_injected", self.corrupt_injected.to_string()),
            ("wire_rejects", self.wire_rejects.to_string()),
            (
                "replayed_identically",
                self.replayed_identically.to_string(),
            ),
            ("wall_ms", self.wall_ms.to_string()),
        ]
    }

    fn print(&self) {
        for (name, value) in self.render() {
            println!("[{} {} nodes] {name}: {value}", self.scenario, self.nodes);
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut args = std::env::args();
    let mut sim_nodes = 10_000usize;
    let mut skip_socket = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--sim-nodes" => {
                sim_nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sim-nodes needs a count");
            }
            "--no-socket" => skip_socket = true,
            _ => {}
        }
    }
    let start = Instant::now();
    let mut rows: Vec<RowMetrics> = Vec::new();
    if !smoke {
        rows.push(run_sim_scenario("sim_replay", 1_000, SEED, true));
    }
    rows.push(run_sim_scenario(
        "sim_churn_partition",
        sim_nodes,
        SEED,
        false,
    ));
    if !skip_socket {
        rows.push(run_socket_scenario(if smoke { 60 } else { 220 }, SEED));
    }

    for row in &rows {
        row.print();
    }
    write_raw_sweep_json(
        "BENCH_nemesis.json",
        &[
            ("seed", SEED.to_string()),
            ("sim_scenario", "\"churn_and_partition\"".to_string()),
            (
                "socket_scenario",
                "\"partition_loss_duplicate_corrupt\"".to_string(),
            ),
            ("smoke", smoke.to_string()),
        ],
        &rows.iter().map(RowMetrics::render).collect::<Vec<_>>(),
    );
    println!(
        "wrote BENCH_nemesis.json ({} rows) in {:.1}s",
        rows.len(),
        start.elapsed().as_secs_f64()
    );

    let violations: usize = rows.iter().map(|r| r.invariant_violations).sum();
    if violations > 0 {
        for row in &rows {
            if !row.report.is_empty() {
                eprintln!(
                    "--- {} ({} nodes) ---\n{}",
                    row.scenario, row.nodes, row.report
                );
            }
        }
        eprintln!("{violations} invariant violations — the run FAILED");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// Simulator scenario
// ---------------------------------------------------------------------------

/// The full observable trace of a simulator run; two same-seed runs must
/// compare equal for the replay row.
type SimTrace = (Vec<NodeStats>, u64, u64, u64, usize);

/// The acceptance scenario on the simulator: load objects, run the
/// churn-and-partition nemesis schedule (holds compressed so a bench run
/// stays minutes, the fault mix untouched) with a get workload riding the
/// fault span, then audit convergence, replication bounds and durability.
fn run_sim_scenario(scenario: &'static str, nodes: usize, seed: u64, replay: bool) -> RowMetrics {
    let start = Instant::now();
    let (mut metrics, first) = run_sim_once(scenario, nodes, seed);
    if replay {
        let (_, second) = run_sim_once(scenario, nodes, seed);
        assert_eq!(
            first, second,
            "same seed, same schedule — the sim trace must replay byte-identically"
        );
        metrics.replayed_identically = 1;
    }
    metrics.wall_ms = start.elapsed().as_millis();
    metrics
}

fn run_sim_once(scenario: &'static str, nodes: usize, seed: u64) -> (RowMetrics, SimTrace) {
    // Wide slices (~500 nodes, 5% of the rank space each): a churn storm
    // shifts every survivor's quantised rank estimate, and with narrow
    // slices that drift marches whole replica populations across slice
    // borders — the slice-census invariants below are only *true* system
    // properties while the drift stays well inside one slice width.
    let slices = (nodes as u32 / 500).max(2);
    let config = NodeConfig::for_system_size(nodes, slices);
    let key_partition = SlicePartition::new(slices);
    let mut nemesis = NemesisSpec::churn_and_partition(nodes);
    // WAN-scale holds compressed to bench scale; rates and groups as preset.
    nemesis.warmup = Duration::from_secs(10);
    nemesis.phase_gap = Duration::from_secs(20);
    nemesis.partition_hold = Duration::from_secs(15);
    nemesis.churn_hold = Duration::from_secs(10);
    let schedule = NemesisSchedule::generate(&nemesis, seed);

    let mut sim = Simulation::new(SimConfig {
        seed,
        client_timeout: Duration::from_secs(10),
        ..SimConfig::default()
    });
    sim.spawn_cluster(nodes, config);
    sim.run_for(Duration::from_secs(30)); // let slicing settle

    // --- Load phase: the objects whose fate the invariants audit ---------
    let client = sim.add_client();
    let object_count = (nodes / 50).clamp(50, 200);
    let keys: Vec<(Key, String)> = (0..object_count)
        .map(|i| {
            let name = format!("nemesis-{i}");
            (Key::from_user_key(&name), name)
        })
        .collect();
    let mut at = sim.now();
    for (key, _) in &keys {
        at += Duration::from_millis(50);
        sim.schedule_put(at, client, *key, Version::new(1), Value::filled(64, 5));
    }
    // Let anti-entropy replicate the loaded objects to steady state before
    // the nemesis starts: the durability invariant audits a cluster that
    // was healthy when it acked, not one hit mid-load.
    sim.run_until(at + Duration::from_secs(30));
    let acked: HashSet<Key> = sim
        .completed_operations()
        .iter()
        .filter(|op| matches!(op.outcome, OperationOutcome::PutAcked { .. }))
        .map(|op| op.key)
        .collect();
    let acked_puts = acked.len() as u64;

    // Pre-fault slice census: the durability invariant compares post-fault
    // alive populations against it to decide whether a majority survived.
    let pop_before: HashMap<u32, usize> = sim
        .slice_populations()
        .into_iter()
        .map(|(slice, count)| (slice.index(), count))
        .collect();

    // --- Fault span: the schedule runs, a get workload rides it ----------
    let origin = sim.now();
    let fault_ops_start = sim.completed_operations().len();
    let span = schedule.span();
    let mut t = Duration::from_millis(500);
    let mut op_index = 0usize;
    while t < span {
        sim.schedule_get(origin + t, client, keys[op_index % keys.len()].0, None);
        op_index += 1;
        t = t + Duration::from_millis(500);
    }
    for event in schedule.events() {
        sim.run_until(origin + event.at);
        sim.apply_nemesis_op(&event.op);
    }
    sim.run_until(origin + span);
    // Let in-flight operations complete or expire before judging them.
    sim.run_for(Duration::from_secs(12));
    let fault_ops = &sim.completed_operations()[fault_ops_start..];
    let successes = fault_ops
        .iter()
        .filter(|op| {
            matches!(
                op.outcome,
                OperationOutcome::PutAcked { .. } | OperationOutcome::GetHit { .. }
            )
        })
        .count();
    let availability = successes as f64 / fault_ops.len().max(1) as f64;

    // --- Post-heal convergence, in anti-entropy rounds --------------------
    // The budget mirrors the store's chunked anti-entropy: each round walks
    // one chunk per peer exchange, so a few sweeps over every chunk (plus
    // slack for gossip to re-mesh the healed sides) must suffice.
    let budget = 4 * config.effective_store_shards() as usize + 8;
    let ae_period = config.replication.anti_entropy_period;
    let census = |sim: &Simulation| -> (HashMap<u32, Vec<NodeId>>, usize) {
        let mut members: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for (id, slice) in sim.slice_assignment() {
            members.entry(slice.index()).or_default().push(id);
        }
        let mass = acked
            .iter()
            .map(|key| slice_replicas(sim, &members, key_partition, *key))
            .sum();
        (members, mass)
    };
    let (_, mut prev_mass) = census(&sim);
    let mut rounds_used = None;
    for round in 1..=budget {
        sim.run_for(ae_period);
        let (members, mass) = census(&sim);
        let full = acked
            .iter()
            .all(|key| slice_replicas(&sim, &members, key_partition, *key) > 0);
        // Converged: every acked key is back and the replication mass has
        // plateaued. The plateau is tolerant (1%) because rank-estimate
        // jitter keeps a handful of nodes drifting across slice borders
        // even at steady state, and the last few anti-entropy acquisitions
        // trickle in one node at a time.
        let plateau = mass.abs_diff(prev_mass) <= prev_mass / 100;
        if full && plateau {
            rounds_used = Some(round);
            break;
        }
        prev_mass = mass;
    }

    // --- Invariants --------------------------------------------------------
    let mut checker = InvariantChecker::new();
    checker.check_convergence(scenario, rounds_used, budget);
    let (members, _) = census(&sim);
    for (key, name) in &keys {
        if !acked.contains(key) {
            continue;
        }
        let slice = key_partition.slice_of(*key).index();
        let alive_pop = members.get(&slice).map_or(0, Vec::len);
        let replicas = slice_replicas(&sim, &members, key_partition, *key);
        if replicas == 0 && std::env::var_os("NEMESIS_BENCH_DEBUG").is_some() {
            eprintln!(
                "DEBUG {name}: slice {slice} census 0, global alive holders {}",
                sim.replication_factor(*key)
            );
        }
        checker.check_replication_bounds(scenario, name, replicas, alive_pop);
        let majority = alive_pop * 2 > pop_before.get(&slice).copied().unwrap_or(0);
        checker.check_acked_durability(scenario, name, replicas, majority);
    }

    let stats = sim.node_stats();
    let sum = |f: fn(&NodeStats) -> u64| stats.iter().map(f).sum::<u64>();
    let metrics = RowMetrics {
        scenario,
        nodes,
        acked_puts,
        availability_under_fault: availability,
        convergence_rounds: rounds_used.unwrap_or(budget + 1),
        rounds_budget: budget,
        invariant_checks: checker.checks_run(),
        invariant_violations: checker.violations().len(),
        frames_dropped_injected: sum(|s| s.frames_dropped_injected),
        frames_duplicated_injected: sum(|s| s.frames_duplicated_injected),
        partition_refusals: sum(|s| s.partition_refusals),
        corrupt_injected: 0, // frame corruption is physical: byte transports only
        wire_rejects: sum(|s| s.wire_rejects),
        replayed_identically: 0,
        wall_ms: 0,
        report: checker.report(),
    };
    let trace = (
        stats,
        sim.messages_delivered(),
        sim.messages_dropped(),
        sim.timer_fires(),
        sim.alive_count(),
    );
    (metrics, trace)
}

/// Alive replicas of `key` *within its own slice* (the invariant's census:
/// churn can leave stale copies on nodes that since changed slice, and
/// those neither count towards nor against the slice's bounds).
fn slice_replicas(
    sim: &Simulation,
    members: &HashMap<u32, Vec<NodeId>>,
    partition: SlicePartition,
    key: Key,
) -> usize {
    members
        .get(&partition.slice_of(key).index())
        .map_or(0, |ids| {
            ids.iter()
                .filter(|id| sim.node(**id).store().get_latest(key).is_some())
                .count()
        })
}

// ---------------------------------------------------------------------------
// Socket scenario
// ---------------------------------------------------------------------------

/// The socket runtime through a partition + loss + duplication window with
/// a read workload and writes confined to one side, a post-heal
/// convergence probe against the *other* side's replicas, then
/// one-at-a-time frame corruption audited by the accounting invariant.
fn run_socket_scenario(nodes: usize, seed: u64) -> RowMetrics {
    let start = Instant::now();
    let slices = (nodes as u32 / 50).max(2);
    let mut config = NodeConfig::for_system_size(nodes, slices);
    config.pss.shuffle_period = Duration::from_secs(1);
    config.slicing.gossip_period = Duration::from_secs(2);
    config.replication.anti_entropy_period = Duration::from_secs(2);
    let ae_period = std::time::Duration::from_secs(2);
    let mut capacity_rng = StdRng::seed_from_u64(seed);
    let capacities: Vec<u64> = (0..nodes)
        .map(|_| capacity_rng.gen_range(100..=10_000))
        .collect();
    let spec = ClusterSpec::new(config, capacities, seed);

    // Warm slice-aware contact plan (a deterministic function of the spec).
    let plan_nodes = spec.build_nodes();
    let key_partition = plan_nodes[0].partition();
    let mut members_by_slice: Vec<Vec<NodeId>> = vec![Vec::new(); slices as usize];
    for node in &plan_nodes {
        if let Some(slice) = node.slice() {
            members_by_slice[slice.index() as usize].push(node.id());
        }
    }
    drop(plan_nodes);

    let mut cluster = SocketCluster::start_spec_with(
        &spec,
        SocketClusterConfig {
            workers: 2,
            transport: SocketTransportKind::Tcp,
            ..SocketClusterConfig::default()
        },
    );
    cluster.set_drain_idle_grace(Duration::from_millis(200));
    let fault_plan = cluster.fault_plan();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AFE);
    std::thread::sleep(std::time::Duration::from_millis(2_500));

    // --- Load phase -------------------------------------------------------
    let object_count = 64usize;
    let keys: Vec<Key> = (0..object_count)
        .map(|i| Key::from_user_key(&format!("sock-nemesis-{i}")))
        .collect();
    let load_start = Instant::now();
    for (i, key) in keys.iter().enumerate() {
        let members = &members_by_slice[key_partition.slice_of(*key).index() as usize];
        let contact = members[rng.gen_range(0..members.len())];
        cluster.submit_client_request(
            CLIENT,
            contact,
            ClientRequest::Put {
                id: RequestId::new(CLIENT, i as u64),
                key: *key,
                version: Version::new(1),
                value: Value::filled(64, 6),
            },
        );
    }
    let (acked_puts, _) = await_completions(&mut cluster, load_start, object_count, |reply| {
        matches!(reply.body, ReplyBody::PutAck { .. })
    });
    // Replicas need a beat to spread beyond the contact before the cut.
    std::thread::sleep(2 * ae_period);

    // --- Fault window: split-brain by id parity + loss + duplication ------
    let (side_a, side_b): (Vec<NodeId>, Vec<NodeId>) = (0..nodes as u64)
        .map(NodeId::new)
        .partition(|id| id.as_u64() % 2 == 0);
    fault_plan.set_partition(&[side_a.clone(), side_b.clone()]);
    fault_plan.set_loss(None, 0.25);
    fault_plan.set_duplicate(None, 0.2);

    // Writes confined to side A: the post-heal probe watches them reach B.
    let cut_keys: Vec<Key> = (0..8)
        .map(|i| Key::from_user_key(&format!("sock-cut-{i}")))
        .collect();
    for (i, key) in cut_keys.iter().enumerate() {
        let contact = side_member(&members_by_slice, key_partition, *key, 0)
            .unwrap_or(side_a[i % side_a.len()]);
        cluster
            .put_via(
                contact,
                *key,
                Version::new(1),
                Value::filled(64, 9),
                Duration::from_secs(5),
            )
            .expect("a cut-side replica still acks its own put");
    }

    // Reads through *random* contacts: requests must hop to the key's slice
    // over lossy, duplicated, partitioned links — this is the availability
    // the row reports.
    let mut attempts = 0u64;
    let mut hits = 0u64;
    let window_deadline = Instant::now() + std::time::Duration::from_secs(6);
    while Instant::now() < window_deadline {
        let key = keys[rng.gen_range(0..keys.len())];
        let contact = NodeId::new(rng.gen_range(0..nodes as u64));
        attempts += 1;
        if matches!(
            cluster.get_via(contact, key, None, Duration::from_millis(1_000)),
            Ok(Some(_))
        ) {
            hits += 1;
        }
    }
    let availability = hits as f64 / attempts.max(1) as f64;

    // --- Heal; watch the cut-side writes converge onto side B -------------
    fault_plan.heal();
    fault_plan.clear();
    let budget = 4 * spec.node_config.effective_store_shards() as usize + 8;
    let heal_at = Instant::now();
    let give_up = heal_at + ae_period * budget as u32;
    let mut rounds_used = None;
    'converge: loop {
        let converged = cut_keys.iter().all(|key| {
            let Some(probe) = side_member(&members_by_slice, key_partition, *key, 1) else {
                // A slice entirely on side A: nothing to wait for.
                return true;
            };
            matches!(
                cluster.get_via(probe, *key, None, Duration::from_millis(500)),
                Ok(Some(_))
            )
        });
        if converged {
            let elapsed = heal_at.elapsed();
            rounds_used = Some((elapsed.as_millis() / ae_period.as_millis()).max(1) as usize);
            break 'converge;
        }
        if Instant::now() >= give_up {
            break 'converge;
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }

    // --- Frame corruption, one at a time -----------------------------------
    // A corrupt frame closes its connection after exactly one reject, and
    // frames buffered behind it die uncounted — bulk arming would
    // undercount, so each arm waits for its reject to land.
    const CORRUPT_FRAMES: u64 = 8;
    for round in 1..=CORRUPT_FRAMES {
        fault_plan.arm_corruption(1);
        let deadline = Instant::now() + std::time::Duration::from_secs(20);
        while fault_plan.corrupted_frames() < round || cluster.wire_reject_count() < round {
            assert!(
                Instant::now() < deadline,
                "corruption round {round}: {} corrupted, {} rejects",
                fault_plan.corrupted_frames(),
                cluster.wire_reject_count()
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    // --- Invariants ---------------------------------------------------------
    let mut checker = InvariantChecker::new();
    checker.check_convergence("socket", rounds_used, budget);
    checker.check_corruption_accounting(
        "socket",
        fault_plan.corrupted_frames(),
        cluster.wire_reject_count(),
    );
    let final_nodes = cluster.shutdown();
    let mut alive_per_slice: HashMap<u32, usize> = HashMap::new();
    for node in &final_nodes {
        if let Some(slice) = node.slice() {
            *alive_per_slice.entry(slice.index()).or_default() += 1;
        }
    }
    for key in keys.iter().chain(&cut_keys) {
        let replicas = final_nodes
            .iter()
            .filter(|node| {
                node.slice().map(SliceId::index) == Some(key_partition.slice_of(*key).index())
                    && node.store().get_latest(*key).is_some()
            })
            .count();
        let slice = key_partition.slice_of(*key).index();
        let alive_pop = alive_per_slice.get(&slice).copied().unwrap_or(0);
        let name = format!("{key:?}");
        checker.check_replication_bounds("socket", &name, replicas, alive_pop);
        // No churn on this row: every slice keeps its full (= majority)
        // population, so every acked object must still be held.
        checker.check_acked_durability("socket", &name, replicas, true);
    }

    let sum = |f: fn(&NodeStats) -> u64| final_nodes.iter().map(|n| f(n.stats())).sum::<u64>();
    RowMetrics {
        scenario: "socket_faults",
        nodes,
        acked_puts: acked_puts as u64,
        availability_under_fault: availability,
        convergence_rounds: rounds_used.unwrap_or(budget + 1),
        rounds_budget: budget,
        invariant_checks: checker.checks_run(),
        invariant_violations: checker.violations().len(),
        frames_dropped_injected: sum(|s| s.frames_dropped_injected),
        frames_duplicated_injected: sum(|s| s.frames_duplicated_injected),
        partition_refusals: sum(|s| s.partition_refusals),
        corrupt_injected: fault_plan.corrupted_frames(),
        wire_rejects: sum(|s| s.wire_rejects),
        replayed_identically: 0,
        wall_ms: start.elapsed().as_millis(),
        report: checker.report(),
    }
}

/// A member of `key`'s slice on partition side `parity` (0 = even ids,
/// 1 = odd ids), if the slice has one there.
fn side_member(
    members_by_slice: &[Vec<NodeId>],
    partition: SlicePartition,
    key: Key,
    parity: u64,
) -> Option<NodeId> {
    members_by_slice[partition.slice_of(key).index() as usize]
        .iter()
        .copied()
        .find(|id| id.as_u64() % 2 == parity)
}
