//! Extension experiment — slicing accuracy and resilience to correlated
//! failures (paper §IV-A: ordered slicing vs the "coin toss" strawman).
//!
//! Runs the ordered rank-estimation slicer gossip over a population of nodes,
//! measures how quickly the assignment converges to the ideal (global
//! knowledge) assignment, then wipes out most of one slice and compares how
//! the ordered slicer and the hash slicer rebalance.
//!
//! Run with `cargo run -p dataflasks-bench --release --bin slicing_convergence`.

use std::collections::HashMap;

use dataflasks::prelude::*;
use dataflasks::slicing::{expected_slice_assignment, slice_accuracy, slice_size_imbalance};
use dataflasks::types::SlicingConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let nodes = parse_arg(1, 500);
    let slices = parse_arg(2, 10) as u32;
    let rounds = 60usize;
    println!("# Slicing convergence: {nodes} nodes, {slices} slices, {rounds} gossip rounds");
    println!("round,accuracy,imbalance");

    let mut rng = StdRng::seed_from_u64(42);
    let partition = SlicePartition::new(slices);
    let profiles: Vec<(NodeId, NodeProfile)> = (0..nodes as u64)
        .map(|i| {
            (
                NodeId::new(i),
                NodeProfile::with_capacity_and_tie_break(rng.gen_range(100..10_000), i),
            )
        })
        .collect();
    let ideal = expected_slice_assignment(&profiles, partition);
    let mut slicers: Vec<OrderedSlicer> = profiles
        .iter()
        .map(|&(id, profile)| OrderedSlicer::new(id, profile, SlicingConfig::default(), partition))
        .collect();

    let mut final_accuracy = 0.0;
    for round in 1..=rounds {
        gossip_round(&mut slicers, &mut rng);
        let actual = assignment_of(&slicers);
        let accuracy = slice_accuracy(&ideal, &actual);
        let imbalance = slice_size_imbalance(&actual, partition);
        final_accuracy = accuracy;
        if round % 5 == 0 || round == 1 {
            println!("{round},{accuracy:.3},{imbalance:.2}");
        }
    }

    // Correlated failure: remove 80% of the members of slice 0, then compare
    // how the two slicers repopulate it.
    let assignment = assignment_of(&slicers);
    let mut slice0_members: Vec<NodeId> = assignment
        .iter()
        .filter(|(_, s)| s.index() == 0)
        .map(|(&id, _)| id)
        .collect();
    slice0_members.sort();
    let to_kill: Vec<NodeId> = slice0_members
        .iter()
        .copied()
        .take(slice0_members.len() * 8 / 10)
        .collect();
    println!(
        "# correlated failure: killing {} of {} members of slice 0",
        to_kill.len(),
        slice0_members.len()
    );

    let survivors: Vec<usize> = profiles
        .iter()
        .enumerate()
        .filter(|(_, (id, _))| !to_kill.contains(id))
        .map(|(i, _)| i)
        .collect();
    // Hash slicer comparison: apply the *same kind* of correlated failure to
    // the hash-assigned slice 0 (kill 80% of its members). Because the hash
    // assignment is a pure function of the node identity it can never
    // rebalance, so slice 0 stays at the surviving 20% forever.
    let hash_members: Vec<NodeId> = profiles
        .iter()
        .map(|&(id, _)| id)
        .filter(|&id| HashSlicer::slice_for(id, partition).index() == 0)
        .collect();
    let hash_killed = hash_members.len() * 8 / 10;
    let hash_slice0 = hash_members.len() - hash_killed;

    // Ordered slicer: survivors keep gossiping; departed nodes' samples expire
    // and the ranks rebalance.
    let mut surviving_slicers: Vec<OrderedSlicer> =
        survivors.iter().map(|&i| slicers[i].clone()).collect();
    for slicer in &mut surviving_slicers {
        for dead in &to_kill {
            slicer.purge(*dead);
        }
    }
    for _ in 0..40 {
        gossip_round(&mut surviving_slicers, &mut rng);
    }
    let ordered_assignment = assignment_of(&surviving_slicers);
    let ordered_slice0 = ordered_assignment
        .values()
        .filter(|s| s.index() == 0)
        .count();
    let expected_per_slice = survivors.len() / slices as usize;

    println!("slicer,slice0_population_after_failure,expected_per_slice");
    println!("ordered,{ordered_slice0},{expected_per_slice}");
    println!("hash,{hash_slice0},{expected_per_slice}");
    println!(
        "# converged accuracy before failure: {final_accuracy:.3}; the ordered slicer repopulates \
         slice 0 close to the balanced size, the hash slicer cannot."
    );
}

fn gossip_round(slicers: &mut [OrderedSlicer], rng: &mut StdRng) {
    let count = slicers.len();
    for i in 0..count {
        slicers[i].advance_round();
        let peer = loop {
            let p = rng.gen_range(0..count);
            if p != i {
                break p;
            }
        };
        let request = slicers[i].create_exchange(rng);
        let reply = slicers[peer].handle_exchange(request, rng);
        slicers[i].handle_reply(reply);
    }
}

fn assignment_of(slicers: &[OrderedSlicer]) -> HashMap<NodeId, SliceId> {
    slicers
        .iter()
        .filter_map(|s| s.current_slice().map(|slice| (s.node(), slice)))
        .collect()
}

fn parse_arg(index: usize, default: usize) -> usize {
    std::env::args()
        .nth(index)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(default)
}
