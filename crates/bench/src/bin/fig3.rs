//! Figure 3 — average number of messages per node with a constant number of
//! slices (k = 10), N ∈ {500, …, 3000}, YCSB write-only workload.
//!
//! Run with `cargo run -p dataflasks-bench --release --bin fig3`.
//! Optional arguments: a comma-separated list of node counts (defaults to the
//! paper's sweep) to run a reduced version, e.g. `fig3 100,200,400`.

use dataflasks_bench::{figure3_config, run_sweep, PAPER_NODE_COUNTS};

fn main() {
    let node_counts = parse_node_counts();
    let results = run_sweep(
        "Figure 3: messages per node, constant number of slices (k = 10), write-only workload",
        &node_counts,
        figure3_config,
    );
    let first = results.first().map(|r| r.request_messages_per_node.mean);
    let last = results.last().map(|r| r.request_messages_per_node.mean);
    if let (Some(first), Some(last)) = (first, last) {
        println!(
            "# shape check: {:.1} msgs/node at N={} vs {:.1} at N={} (paper: roughly constant)",
            first,
            node_counts.first().unwrap(),
            last,
            node_counts.last().unwrap()
        );
    }
}

fn parse_node_counts() -> Vec<usize> {
    match std::env::args().nth(1) {
        Some(arg) => arg
            .split(',')
            .filter_map(|part| part.trim().parse().ok())
            .collect(),
        None => PAPER_NODE_COUNTS.to_vec(),
    }
}
