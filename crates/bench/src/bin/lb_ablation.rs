//! Extension experiment — load-balancer ablation (paper §VII).
//!
//! The paper's prototype hands clients a random contact node and §VII argues
//! that a smarter load balancer (knowing which node to contact for each
//! request) would "reduce dissemination mechanisms to the minimum". This
//! experiment compares the random policy with the slice-aware cache
//! implemented in this repository on an update-heavy workload (repeated
//! writes to the same records, where the cache can actually learn).
//!
//! Run with `cargo run -p dataflasks-bench --release --bin lb_ablation`.

use dataflasks::prelude::*;

fn main() {
    let nodes = parse_arg(1, 200);
    let records = parse_arg(2, 50);
    let updates = parse_arg(3, 400);
    println!(
        "# Load-balancer ablation: {nodes} nodes, 4 slices, {records} records, {updates} updates"
    );
    println!("policy,request_messages_per_node,success_ratio");
    for (label, policy) in [
        ("random", LoadBalancerPolicy::Random),
        ("slice_aware", LoadBalancerPolicy::SliceAware),
    ] {
        let (messages, success) = run(nodes, records, updates, policy);
        println!("{label},{messages:.1},{success:.3}");
    }
    println!("# expectation: the slice-aware cache sends follow-up operations straight to a");
    println!("# member of the responsible slice, skipping the global search phase and");
    println!("# lowering the per-node request-message count.");
}

fn run(nodes: usize, records: usize, updates: usize, policy: LoadBalancerPolicy) -> (f64, f64) {
    let slices = 4u32;
    let config = NodeConfig::for_system_size(nodes, slices).without_anti_entropy();
    let mut sim = Simulation::new(SimConfig::default());
    sim.set_client_policy(policy);
    sim.spawn_cluster(nodes, config);
    sim.run_for(Duration::from_secs(60));

    let client = sim.add_client();
    // Update-heavy workload over a small record set: version v of record r.
    let spec = WorkloadSpec {
        record_count: records,
        operation_count: updates,
        read_proportion: 0.0,
        update_proportion: 1.0,
        insert_proportion: 0.0,
        key_distribution: KeyDistribution::Uniform,
        value_size: 128,
    };
    let mut generator = WorkloadGenerator::new(spec, 0xAB1A);
    let mut at = sim.now();
    for op in generator.load_phase() {
        at += Duration::from_millis(50);
        sim.schedule_put(
            at,
            client,
            op.key,
            op.version.unwrap_or(Version::new(1)),
            op.value,
        );
    }
    for op in generator.transaction_phase() {
        at += Duration::from_millis(50);
        sim.schedule_put(
            at,
            client,
            op.key,
            op.version.unwrap_or(Version::new(1)),
            op.value,
        );
    }
    sim.run_until(at + Duration::from_secs(30));

    let report = sim.cluster_report();
    (report.request_messages_per_node.mean, sim.success_ratio())
}

fn parse_arg(index: usize, default: usize) -> usize {
    std::env::args()
        .nth(index)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(default)
}
