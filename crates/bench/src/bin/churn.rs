//! Extension experiment — replication maintenance under churn (paper §VII).
//!
//! Loads a set of objects into a simulated cluster, then subjects the system
//! to churn (crashes and joins) with anti-entropy repair either disabled (the
//! paper's prototype) or enabled (the extension implemented in this
//! repository), and reports object availability and replication factors.
//!
//! Run with `cargo run -p dataflasks-bench --release --bin churn`.

use dataflasks::prelude::*;

struct ChurnResult {
    anti_entropy: bool,
    crashes: usize,
    availability: f64,
    mean_replication: f64,
    min_replication: usize,
}

fn main() {
    let nodes = parse_arg(1, 200);
    let objects = parse_arg(2, 100);
    println!("# Churn experiment: {nodes} nodes, 4 slices, {objects} objects, crashing 30% of the cluster");
    println!("anti_entropy,crashes,availability,mean_replication,min_replication");
    for anti_entropy in [false, true] {
        let result = run_churn(nodes, objects, anti_entropy);
        println!(
            "{},{},{:.3},{:.1},{}",
            result.anti_entropy,
            result.crashes,
            result.availability,
            result.mean_replication,
            result.min_replication
        );
    }
    println!("# expectation: with anti-entropy enabled availability stays at 1.0 and the");
    println!("# minimum replication factor recovers; without it replicas are only the ones");
    println!("# the original dissemination reached and churn erodes them.");
}

fn run_churn(nodes: usize, objects: usize, anti_entropy: bool) -> ChurnResult {
    let slices = 4u32;
    let mut config = NodeConfig::for_system_size(nodes, slices);
    if !anti_entropy {
        config = config.without_anti_entropy();
    }
    let mut sim = Simulation::new(SimConfig::default());
    sim.spawn_cluster(nodes, config);
    sim.run_for(Duration::from_secs(60));

    let client = sim.add_client();
    let spec = WorkloadSpec::write_only(objects, 0);
    let mut generator = WorkloadGenerator::new(spec, 0xC0FFEE);
    let mut keys = Vec::new();
    let mut at = sim.now();
    for op in generator.load_phase() {
        keys.push(op.key);
        at += Duration::from_millis(50);
        sim.schedule_put(
            at,
            client,
            op.key,
            op.version.unwrap_or(Version::new(1)),
            op.value,
        );
    }
    sim.run_until(at + Duration::from_secs(30));

    // Churn: crash 30% of the cluster and add 10% new nodes over two minutes.
    let crashes = nodes * 3 / 10;
    let joins = nodes / 10;
    let churn_start = sim.now();
    let churn_end = churn_start + Duration::from_secs(120);
    sim.schedule_churn(churn_start, churn_end, crashes, joins);
    sim.run_until(churn_end + Duration::from_secs(120));

    let available = keys
        .iter()
        .filter(|&&k| sim.replication_factor(k) > 0)
        .count();
    let replication: Vec<usize> = keys.iter().map(|&k| sim.replication_factor(k)).collect();
    let mean_replication =
        replication.iter().sum::<usize>() as f64 / replication.len().max(1) as f64;
    ChurnResult {
        anti_entropy,
        crashes,
        availability: available as f64 / keys.len().max(1) as f64,
        mean_replication,
        min_replication: replication.iter().copied().min().unwrap_or(0),
    }
}

fn parse_arg(index: usize, default: usize) -> usize {
    std::env::args()
        .nth(index)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(default)
}
