//! Socket-runtime scaling baseline: hosts DataFlasks clusters on the
//! socket-backed `SocketCluster` — every node behind a real loopback
//! listener, every protocol hop a dialed, framed, reassembled byte stream
//! pumped by per-thread readiness reactors — drives a put/get workload
//! through each `nodes:workers` row of a sweep, and writes throughput and
//! latency percentiles (p50/p99/p99.9) to `BENCH_socket.json` (the same
//! sweep schema as `BENCH_async.json`, plus the transport counters: dials,
//! dial retries, wire rejects, frame-arena buffer counts).
//!
//! ```bash
//! cargo run -p dataflasks-bench --release --bin socket_bench
//! # CI smoke: fewer operations, explicit rows (a 220-node scaling pair
//! # and the 2000-node row), steady-state allocation assertion on
//! cargo run -p dataflasks-bench --release --bin socket_bench -- \
//!     --rows 220:1,220:2,2000:2 --puts 100 --gets 100 --latency-ops 20 \
//!     --assert-steady-alloc
//! # Unix-domain sockets instead of TCP
//! cargo run -p dataflasks-bench --release --bin socket_bench -- --transport unix
//! ```

use std::collections::HashSet;
use std::time::Instant;

use dataflasks::core::{ClientRequest, Environment, ReplyBody};
use dataflasks::prelude::*;
use dataflasks_bench::{
    await_completions, percentile, print_scaling_summary, write_sweep_json, SweepRow,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Args {
    nodes: usize,
    slices: u32,
    /// The `(nodes, workers)` sweep rows. `None` until finalised by
    /// [`Args::parse`].
    rows: Option<Vec<(usize, usize)>>,
    mailbox: usize,
    puts: usize,
    gets: usize,
    latency_ops: usize,
    transport: SocketTransportKind,
    /// Assert that the latency phase allocated zero fresh arena buffers:
    /// the warmed cluster must run steady-state send/receive entirely on
    /// recycled frame and reassembly buffers.
    assert_steady_alloc: bool,
}

impl Args {
    fn parse() -> Self {
        let mut args = Self {
            // The acceptance bar for the socket backend is a ≥200-node
            // loopback cluster; leave headroom above it. The default row
            // plan below additionally scales one row to 2000 nodes.
            nodes: 220,
            slices: 0, // 0 = derive (≈50 nodes per slice)
            rows: None,
            mailbox: 0,
            // Bursts deep enough to amortise pipeline fill and keep the
            // vectored flush coalescing many frames per syscall — the
            // steady-state regime the throughput columns are meant to
            // measure (the pre-reactor artifact used 200-op bursts, which
            // mostly measured the first flood's completion latency).
            puts: 1_600,
            gets: 1_600,
            latency_ops: 100,
            transport: SocketTransportKind::Tcp,
            assert_steady_alloc: false,
        };
        // `--nodes`/`--workers`/`--sweep` keep their single-node-count
        // meaning; `--rows` supersedes all three.
        let mut sweep: Vec<usize> = vec![1, 2];
        let mut shape_overridden = false;
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            let mut take = |target: &mut usize| {
                *target = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{flag} needs a numeric value"));
            };
            match flag.as_str() {
                "--nodes" => {
                    take(&mut args.nodes);
                    shape_overridden = true;
                }
                "--mailbox" => take(&mut args.mailbox),
                "--puts" => take(&mut args.puts),
                "--gets" => take(&mut args.gets),
                "--latency-ops" => take(&mut args.latency_ops),
                "--workers" => {
                    let mut v = 0usize;
                    take(&mut v);
                    sweep = vec![v];
                    shape_overridden = true;
                }
                "--sweep" => {
                    let list = iter.next().unwrap_or_else(|| panic!("--sweep needs 1,2"));
                    sweep = list
                        .split(',')
                        .map(|w| w.parse().expect("--sweep takes worker counts"))
                        .collect();
                    assert!(!sweep.is_empty(), "--sweep must name a worker count");
                    shape_overridden = true;
                }
                "--rows" => {
                    let list = iter
                        .next()
                        .unwrap_or_else(|| panic!("--rows needs 220:1,2000:2"));
                    let rows: Vec<(usize, usize)> = list
                        .split(',')
                        .map(|row| {
                            let (nodes, workers) = row
                                .split_once(':')
                                .unwrap_or_else(|| panic!("--rows entries are nodes:workers"));
                            (
                                nodes.parse().expect("--rows node counts are numeric"),
                                workers.parse().expect("--rows worker counts are numeric"),
                            )
                        })
                        .collect();
                    assert!(!rows.is_empty(), "--rows must name at least one row");
                    args.rows = Some(rows);
                }
                "--slices" => {
                    let mut v = 0usize;
                    take(&mut v);
                    args.slices = v as u32;
                }
                "--transport" => {
                    let kind = iter
                        .next()
                        .unwrap_or_else(|| panic!("--transport needs tcp|unix"));
                    args.transport = match kind.as_str() {
                        "tcp" => SocketTransportKind::Tcp,
                        "unix" => SocketTransportKind::Unix,
                        other => panic!("unknown transport {other} (tcp|unix)"),
                    };
                }
                "--assert-steady-alloc" => args.assert_steady_alloc = true,
                other => panic!("unknown flag {other}"),
            }
        }
        if args.rows.is_none() {
            let mut rows: Vec<(usize, usize)> =
                sweep.iter().map(|&workers| (args.nodes, workers)).collect();
            if !shape_overridden {
                // The default plan: the historical 220-node scaling pair,
                // plus one row an order of magnitude up.
                rows.push((2_000, 2));
            }
            args.rows = Some(rows);
        }
        if args.slices == 0 {
            args.slices = (args.nodes as u32 / 50).max(2);
        }
        args
    }

    /// Slice count for a row's node count: the explicit `--slices` override,
    /// or the ≈50-nodes-per-slice derivation.
    fn slices_for(&self, nodes: usize) -> u32 {
        if nodes == self.nodes {
            self.slices
        } else {
            (nodes as u32 / 50).max(2)
        }
    }
}

const CLIENT: u64 = 7;

/// The historical baseline this artifact's `history` header records: the
/// 220-node workers-1 row as measured before the readiness-reactor,
/// vectored-write and frame-arena overhaul (one reactor thread spinning
/// over every socket, one `write` syscall per frame, a fresh allocation
/// per frame and per read).
const PR5_BASELINE_HISTORY: &str = concat!(
    "{\n",
    "    \"scan_loop_single_frame_writes\": {\n",
    "      \"nodes\": 220,\n",
    "      \"workers\": 1,\n",
    "      \"put_throughput_ops_per_s\": 1616.64,\n",
    "      \"get_throughput_ops_per_s\": 1703.88,\n",
    "      \"put_latency_p50_us\": 13.65,\n",
    "      \"put_latency_p99_us\": 2334.92,\n",
    "      \"get_latency_p50_us\": 11.38,\n",
    "      \"get_latency_p99_us\": 428.84\n",
    "    }\n",
    "  }"
);

fn main() {
    let args = Args::parse();
    let rows_plan = args.rows.clone().expect("parse() finalises the row plan");
    let rows: Vec<SweepRow> = rows_plan
        .iter()
        .map(|&(nodes, workers)| run_row(&args, nodes, workers))
        .collect();

    let transport_name = match args.transport {
        SocketTransportKind::Tcp => "tcp",
        SocketTransportKind::Unix => "unix",
    };
    write_sweep_json(
        "BENCH_socket.json",
        &[
            // Closed-loop: each blocking operation waits out the previous
            // one, so the sweep measures latency under light load, not
            // capacity — BENCH_openloop.json carries the capacity numbers.
            ("workload_mode", "\"closed_loop_latency_bound\"".to_string()),
            // The header keeps the historical 220-node shape (every row
            // also records its own node count).
            ("nodes", args.nodes.to_string()),
            ("slices", args.slices.to_string()),
            ("mailbox_capacity", args.mailbox.to_string()),
            ("transport", format!("\"{transport_name}\"")),
            ("history", PR5_BASELINE_HISTORY.to_string()),
        ],
        &rows,
    );
    print_scaling_summary(&rows, &format!(" ({transport_name})"));
}

/// Runs the whole workload once on a fresh `nodes`-node cluster at
/// `workers` workers and returns the row.
fn run_row(args: &Args, nodes: usize, workers: usize) -> SweepRow {
    // Same substrate pacing as the async bench: two-second gossip keeps the
    // periodic protocols live under the workload without drowning the host.
    let slices = args.slices_for(nodes);
    let mut config = NodeConfig::for_system_size(nodes, slices);
    config.pss.shuffle_period = Duration::from_secs(2);
    config.slicing.gossip_period = Duration::from_secs(4);
    config.replication.anti_entropy_period = Duration::from_secs(3);
    let mut capacity_rng = StdRng::seed_from_u64(0x50C4E7);
    let capacities: Vec<u64> = (0..nodes)
        .map(|_| capacity_rng.gen_range(100..=10_000))
        .collect();
    let spec = ClusterSpec::new(config, capacities, 0x50C4E7);

    // Warmed slice-aware contact plan (deterministic function of the spec).
    let plan = spec.build_nodes();
    let partition = plan[0].partition();
    let mut members_by_slice: Vec<Vec<NodeId>> = vec![Vec::new(); slices as usize];
    for node in &plan {
        if let Some(slice) = node.slice() {
            members_by_slice[slice.index() as usize].push(node.id());
        }
    }
    drop(plan);
    for (index, members) in members_by_slice.iter().enumerate() {
        assert!(
            !members.is_empty(),
            "slice {index} has no members: the nodes/slices ratio leaves \
             slices unpopulated; use at least ~25 nodes per slice"
        );
    }
    let members_by_slice = &members_by_slice;

    let mut rng = StdRng::seed_from_u64(0x50C4E7 ^ ((nodes as u64) << 20) ^ (workers as u64) << 32);
    let spawn_start = Instant::now();
    let mut cluster = SocketCluster::start_spec_with(
        &spec,
        SocketClusterConfig {
            workers,
            mailbox_capacity: args.mailbox,
            transport: args.transport,
            ..SocketClusterConfig::default()
        },
    );
    let spawn_ms = spawn_start.elapsed().as_millis();
    let workers = cluster.worker_count();
    assert!(workers <= 8, "the scaling claim is ≤8 worker threads");
    cluster.set_drain_idle_grace(Duration::from_millis(100));
    println!(
        "spawned {nodes} nodes ({slices} slices, {nodes} listeners) on \
         {workers} workers ({} reactors) in {spawn_ms} ms",
        cluster.io_thread_count(),
    );

    // Let the staggered first gossip rounds start flowing (a bit over one
    // shuffle period): every row measures with live socket traffic — and the
    // lazy dials it triggers — competing with requests.
    std::thread::sleep(std::time::Duration::from_millis(2_300));

    let contact_for = |key: Key, rng: &mut StdRng| -> NodeId {
        let members = &members_by_slice[partition.slice_of(key).index() as usize];
        members[rng.gen_range(0..members.len())]
    };

    // --- Pipelined put throughput ---------------------------------------
    let key_of = |i: usize| Key::from_user_key(&format!("sock-{workers}-{i}"));
    let put_start = Instant::now();
    for i in 0..args.puts {
        let key = key_of(i);
        let contact = contact_for(key, &mut rng);
        cluster.submit_client_request(
            CLIENT,
            contact,
            ClientRequest::Put {
                id: RequestId::new(CLIENT, i as u64),
                key,
                version: Version::new(1),
                value: Value::filled(128, 7),
            },
        );
    }
    let (put_acked, put_elapsed) = await_completions(&mut cluster, put_start, args.puts, |reply| {
        matches!(reply.body, ReplyBody::PutAck { .. })
    });
    let put_throughput = put_acked as f64 / put_elapsed.as_secs_f64();

    // --- Pipelined get throughput ----------------------------------------
    let get_start = Instant::now();
    for i in 0..args.gets {
        let key = key_of(i % args.puts.max(1));
        let contact = contact_for(key, &mut rng);
        cluster.submit_client_request(
            CLIENT,
            contact,
            ClientRequest::Get {
                id: RequestId::new(CLIENT, (args.puts + i) as u64),
                key,
                version: None,
            },
        );
    }
    let mut get_hits: HashSet<RequestId> = HashSet::new();
    let (get_answered, get_elapsed) = {
        let hits = &mut get_hits;
        await_completions(&mut cluster, get_start, args.gets, |reply| {
            match reply.body {
                ReplyBody::GetHit { .. } => {
                    hits.insert(reply.request);
                    true
                }
                ReplyBody::GetMiss { .. } => true,
                ReplyBody::PutAck { .. } => false,
            }
        })
    };
    let get_throughput = get_answered as f64 / get_elapsed.as_secs_f64();

    // --- Blocking-API latency (socket round trips) ------------------------
    // Steady state has to be reached before it can be asserted: the periodic
    // protocols (shuffle, slicing gossip, anti-entropy) each fan a wave of
    // frames across the whole cluster once per period, and the arena only
    // reaches its true high-water once every wave kind has fired *while
    // client ops were in flight*. Run untimed warm-up round trips spanning at
    // least one full cycle of the slowest period, then require one clean pass
    // (zero fresh allocations) before measuring; the measured phase must then
    // run entirely on recycled buffers — zero fresh allocations on the
    // encode, outbound-queue and reassembly paths — even if a gossip wave
    // lands inside it.
    let warm_keys: Vec<Key> = (0..64)
        .map(|i| Key::from_user_key(&format!("warm-{workers}-{i}")))
        .collect();
    let warm_start = Instant::now();
    let min_warm = std::time::Duration::from_millis(4_600);
    let warm_deadline = warm_start + std::time::Duration::from_secs(30);
    let mut warm_pass = 0u64;
    loop {
        let fresh_at_pass_start = cluster.arena_fresh_buffers();
        for key in &warm_keys {
            let contact = contact_for(*key, &mut rng);
            let _ = cluster.put_via(
                contact,
                *key,
                Version::new(warm_pass + 2),
                Value::filled(128, 8),
                Duration::from_secs(10),
            );
            let _ = cluster.get_via(contact, *key, None, Duration::from_secs(10));
        }
        warm_pass += 1;
        let clean = cluster.arena_fresh_buffers() == fresh_at_pass_start;
        if std::env::var_os("SOCKET_BENCH_WARM_DEBUG").is_some() {
            eprintln!(
                "WARM pass {warm_pass} t={:?} fresh {} (+{}) recycled {}",
                warm_start.elapsed(),
                cluster.arena_fresh_buffers(),
                cluster.arena_fresh_buffers() - fresh_at_pass_start,
                cluster.arena_recycled_buffers(),
            );
        }
        let now = Instant::now();
        if (clean && now >= warm_start + min_warm) || now >= warm_deadline {
            break;
        }
    }
    let fresh_before_latency = cluster.arena_fresh_buffers();
    let mut put_lat_us = Vec::with_capacity(args.latency_ops);
    let mut get_lat_us = Vec::with_capacity(args.latency_ops);
    let with_retries = |mut op: Box<dyn FnMut() -> bool + '_>| -> f64 {
        for _ in 0..8 {
            let start = Instant::now();
            if op() {
                return start.elapsed().as_nanos() as f64 / 1_000.0;
            }
        }
        panic!("operation failed eight attempts in a row");
    };
    for i in 0..args.latency_ops {
        let key = Key::from_user_key(&format!("lat-{workers}-{i}"));
        let contact = contact_for(key, &mut rng);
        put_lat_us.push(with_retries(Box::new(|| {
            cluster
                .put_via(
                    contact,
                    key,
                    Version::new(1),
                    Value::filled(128, 9),
                    Duration::from_secs(10),
                )
                .is_ok()
        })));
        get_lat_us.push(with_retries(Box::new(|| {
            matches!(
                cluster.get_via(contact, key, None, Duration::from_secs(10)),
                Ok(Some(_))
            )
        })));
    }

    // --- Transport sanity + teardown ---------------------------------------
    let arena_steady_fresh_delta = cluster.arena_fresh_buffers() - fresh_before_latency;
    if args.assert_steady_alloc {
        assert_eq!(
            arena_steady_fresh_delta, 0,
            "steady state must allocate zero fresh arena buffers \
             ({arena_steady_fresh_delta} allocated during the latency phase)"
        );
    }
    let arena_fresh = cluster.arena_fresh_buffers();
    let arena_recycled = cluster.arena_recycled_buffers();
    let saturations = cluster.saturation_events();
    let dials = cluster.dial_count();
    let dial_retries = cluster.dial_retry_count();
    let wire_rejects = cluster.wire_reject_count();
    let final_nodes = cluster.shutdown();
    let gossip_messages: u64 = final_nodes
        .iter()
        .map(|n| n.stats().sent(MessageKind::Membership) + n.stats().sent(MessageKind::Slicing))
        .sum();
    let stored_keys: usize = final_nodes
        .iter()
        .map(|n| dataflasks::store::DataStore::len(n.store()))
        .sum();
    assert!(
        put_acked > 0 && get_answered > 0,
        "a sweep row completed zero operations (workers {workers})"
    );
    assert!(
        gossip_messages > 0,
        "the periodic substrate must have run over the sockets"
    );
    assert!(
        dials > 0,
        "protocol traffic must have dialed real connections"
    );
    assert_eq!(
        wire_rejects, 0,
        "loopback frames are byte-exact; a reject is an encoder/decoder bug"
    );

    let results = vec![
        ("workers", workers as f64),
        ("nodes", nodes as f64),
        ("spawn_ms", spawn_ms as f64),
        ("spawn_ms_per_node", spawn_ms as f64 / (nodes.max(1)) as f64),
        ("puts_submitted", args.puts as f64),
        ("puts_completed", put_acked as f64),
        ("put_throughput_ops_per_s", put_throughput),
        ("gets_submitted", args.gets as f64),
        ("gets_answered", get_answered as f64),
        ("get_hits", get_hits.len() as f64),
        ("get_throughput_ops_per_s", get_throughput),
        ("put_latency_p50_us", percentile(&mut put_lat_us, 0.50)),
        ("put_latency_p99_us", percentile(&mut put_lat_us, 0.99)),
        ("put_latency_p999_us", percentile(&mut put_lat_us, 0.999)),
        ("get_latency_p50_us", percentile(&mut get_lat_us, 0.50)),
        ("get_latency_p99_us", percentile(&mut get_lat_us, 0.99)),
        ("get_latency_p999_us", percentile(&mut get_lat_us, 0.999)),
        ("mailbox_saturations", saturations as f64),
        ("dials", dials as f64),
        ("dial_retries", dial_retries as f64),
        ("wire_rejects", wire_rejects as f64),
        ("arena_fresh_buffers", arena_fresh as f64),
        ("arena_recycled_buffers", arena_recycled as f64),
        ("arena_steady_fresh_delta", arena_steady_fresh_delta as f64),
        ("gossip_messages", gossip_messages as f64),
        ("replica_objects_total", stored_keys as f64),
    ];
    for (name, value) in &results {
        println!("[{nodes} nodes, workers {workers}] {name}: {value:.2}");
    }
    results
}
