//! Open-loop capacity bench: offers load to the pipelined client path at a
//! schedule of fixed arrival rates and finds the throughput knee.
//!
//! Where `socket_bench`/`async_bench` measure *latency-bound* closed-loop
//! numbers (each blocking operation waits for the previous one, so a slow
//! server slows the client and hides its own overload), this bench drives
//! the pipelined `submit_put`/`submit_get` ticket API from a seeded Poisson
//! arrival schedule (`dataflasks_workload::OpenLoopSchedule`): arrivals
//! land whether or not the cluster kept up, latency is measured from each
//! operation's **scheduled arrival** (coordinated-omission-free), and
//! arrivals that find the in-flight cap full are shed and counted rather
//! than silently delayed. Each `(backend, offered rate)` row runs on a
//! fresh warmed cluster of the historical 220-node socket shape; the
//! sweep's achieved-vs-offered curve locates the capacity knee, and a
//! closed-loop blocking baseline (one ticket at a time over the identical
//! operation sequence) is measured per backend into the `history` header so
//! the two numbers can never be confused.
//!
//! ```bash
//! cargo run -p dataflasks-bench --release --bin openloop_bench
//! # CI smoke: two small rates, short rows, no baseline comparison gate
//! cargo run -p dataflasks-bench --release --bin openloop_bench -- \
//!     --rates 300,600 --row-seconds 1 --baseline-ops 50
//! ```

use std::time::Instant;

use dataflasks::core::PipelinedClient;
use dataflasks::prelude::*;
use dataflasks::workload::{OpenLoopSchedule, OpenLoopSpec};
use dataflasks_bench::{
    percentile, render_sweep_metric, run_open_loop, write_raw_sweep_json, OpenLoopOutcome,
    RawSweepRow,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x50C4E7;

struct Args {
    nodes: usize,
    slices: u32,
    workers: usize,
    /// Offered load points of the sweep, in operations per second.
    rates: Vec<f64>,
    /// Scheduled duration of each row; the operation count of a row is
    /// `rate * row_seconds`.
    row_seconds: f64,
    read_fraction: f64,
    key_space: usize,
    value_size: usize,
    inflight_cap: usize,
    op_timeout: Duration,
    /// Operations of the closed-loop blocking baseline measured per
    /// backend (0 skips the baseline).
    baseline_ops: usize,
    transport: SocketTransportKind,
}

impl Args {
    fn parse() -> Self {
        let mut args = Self {
            // The historical socket-bench shape: the acceptance bar for
            // capacity numbers is the 220-node loopback cluster.
            nodes: 220,
            slices: 0, // 0 = derive (≈50 nodes per slice)
            workers: 1,
            rates: Vec::new(),
            row_seconds: 4.0,
            read_fraction: 0.95,
            key_space: 200,
            value_size: 128,
            inflight_cap: 1_024,
            op_timeout: Duration::from_secs(2),
            baseline_ops: 2_000,
            transport: SocketTransportKind::Tcp,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            let mut take_usize = |target: &mut usize| {
                *target = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{flag} needs a numeric value"));
            };
            match flag.as_str() {
                "--nodes" => take_usize(&mut args.nodes),
                "--workers" => take_usize(&mut args.workers),
                "--key-space" => take_usize(&mut args.key_space),
                "--value-size" => take_usize(&mut args.value_size),
                "--inflight-cap" => take_usize(&mut args.inflight_cap),
                "--baseline-ops" => take_usize(&mut args.baseline_ops),
                "--slices" => {
                    let mut v = 0usize;
                    take_usize(&mut v);
                    args.slices = v as u32;
                }
                "--rates" => {
                    let list = iter
                        .next()
                        .unwrap_or_else(|| panic!("--rates needs 1000,2000"));
                    args.rates = list
                        .split(',')
                        .map(|r| r.parse().expect("--rates takes ops/s values"))
                        .collect();
                    assert!(!args.rates.is_empty(), "--rates must name a rate");
                }
                "--row-seconds" => {
                    args.row_seconds = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--row-seconds needs a value"));
                }
                "--read-fraction" => {
                    args.read_fraction = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--read-fraction needs a value"));
                }
                "--op-timeout-ms" => {
                    let mut v = 0usize;
                    take_usize(&mut v);
                    args.op_timeout = Duration::from_millis(v as u64);
                }
                "--transport" => {
                    let kind = iter
                        .next()
                        .unwrap_or_else(|| panic!("--transport needs tcp|unix"));
                    args.transport = match kind.as_str() {
                        "tcp" => SocketTransportKind::Tcp,
                        "unix" => SocketTransportKind::Unix,
                        other => panic!("unknown transport {other} (tcp|unix)"),
                    };
                }
                other => panic!("unknown flag {other}"),
            }
        }
        if args.rates.is_empty() {
            // Spans both knees on the 1-vCPU reference host: socket
            // saturates between 16k and 24k, async between 24k and 32k.
            args.rates = vec![
                1_000.0, 2_000.0, 4_000.0, 8_000.0, 12_000.0, 16_000.0, 24_000.0, 32_000.0,
            ];
        }
        if args.slices == 0 {
            args.slices = (args.nodes as u32 / 50).max(2);
        }
        args
    }
}

/// The two backends the sweep covers.
#[derive(Clone, Copy, PartialEq)]
enum Backend {
    Async,
    Socket,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Self::Async => "async",
            Self::Socket => "socket",
        }
    }
}

/// The slice-aware contact plan: a deterministic function of the spec.
struct ContactPlan {
    partition: SlicePartition,
    members_by_slice: Vec<Vec<NodeId>>,
}

impl ContactPlan {
    fn build(spec: &ClusterSpec, slices: u32) -> Self {
        let plan = spec.build_nodes();
        let partition = plan[0].partition();
        let mut members_by_slice: Vec<Vec<NodeId>> = vec![Vec::new(); slices as usize];
        for node in &plan {
            if let Some(slice) = node.slice() {
                members_by_slice[slice.index() as usize].push(node.id());
            }
        }
        for (index, members) in members_by_slice.iter().enumerate() {
            assert!(
                !members.is_empty(),
                "slice {index} has no members: use at least ~25 nodes per slice"
            );
        }
        Self {
            partition,
            members_by_slice,
        }
    }

    fn contact_for(&self, key: Key, rng: &mut StdRng) -> NodeId {
        let members = &self.members_by_slice[self.partition.slice_of(key).index() as usize];
        members[rng.gen_range(0..members.len())]
    }
}

fn main() {
    let args = Args::parse();
    let mut config = NodeConfig::for_system_size(args.nodes, args.slices);
    config.pss.shuffle_period = Duration::from_secs(2);
    config.slicing.gossip_period = Duration::from_secs(4);
    config.replication.anti_entropy_period = Duration::from_secs(3);
    let mut capacity_rng = StdRng::seed_from_u64(SEED);
    let capacities: Vec<u64> = (0..args.nodes)
        .map(|_| capacity_rng.gen_range(100..=10_000))
        .collect();
    let spec = ClusterSpec::new(config, capacities, SEED);
    let plan = ContactPlan::build(&spec, args.slices);

    let mut rows: Vec<RawSweepRow> = Vec::new();
    let mut baselines: Vec<(Backend, f64)> = Vec::new();
    for backend in [Backend::Async, Backend::Socket] {
        let baseline = if args.baseline_ops > 0 {
            let rate = run_blocking_baseline(&args, &spec, &plan, backend);
            baselines.push((backend, rate));
            rate
        } else {
            0.0
        };
        for &rate in &args.rates {
            rows.push(run_row(&args, &spec, &plan, backend, rate));
        }
        report_knee(&rows, backend, baseline);
    }

    let transport_name = match args.transport {
        SocketTransportKind::Tcp => "tcp",
        SocketTransportKind::Unix => "unix",
    };
    let history = render_history(&baselines, &args);
    write_raw_sweep_json(
        "BENCH_openloop.json",
        &[
            ("workload_mode", "\"open_loop\"".to_string()),
            ("nodes", args.nodes.to_string()),
            ("slices", args.slices.to_string()),
            ("workers", args.workers.to_string()),
            ("transport", format!("\"{transport_name}\"")),
            ("read_fraction", format!("{:.2}", args.read_fraction)),
            ("key_space", args.key_space.to_string()),
            ("value_size", args.value_size.to_string()),
            ("inflight_cap", args.inflight_cap.to_string()),
            ("op_timeout_ms", args.op_timeout.as_millis().to_string()),
            ("seed", SEED.to_string()),
            ("history", history),
        ],
        &rows,
    );
}

/// A spawned backend: one enum so rows share the run path and still reach
/// the backend's own teardown and counters.
enum Cluster {
    Async(AsyncCluster),
    Socket(SocketCluster),
}

impl Cluster {
    /// `(inflight_high_water, completions_routed, openloop_sheds)`.
    fn counters(&self) -> (u64, u64, u64) {
        match self {
            Self::Async(c) => (
                c.inflight_high_water(),
                c.completions_routed(),
                c.openloop_sheds(),
            ),
            Self::Socket(c) => (
                c.inflight_high_water(),
                c.completions_routed(),
                c.openloop_sheds(),
            ),
        }
    }

    /// Stops the worker pool (and sockets) before the next row spawns.
    fn shutdown(self) {
        match self {
            Self::Async(c) => drop(c.shutdown()),
            Self::Socket(c) => drop(c.shutdown()),
        }
    }
}

impl PipelinedClient for Cluster {
    fn submit_put(
        &self,
        contact: Option<NodeId>,
        key: Key,
        version: Version,
        value: Value,
        timeout: Duration,
    ) -> Result<Ticket, dataflasks::core::GatewayError> {
        match self {
            Self::Async(c) => c.submit_put(contact, key, version, value, timeout),
            Self::Socket(c) => c.submit_put(contact, key, version, value, timeout),
        }
    }

    fn submit_get(
        &self,
        contact: Option<NodeId>,
        key: Key,
        version: Option<Version>,
        timeout: Duration,
    ) -> Result<Ticket, dataflasks::core::GatewayError> {
        match self {
            Self::Async(c) => c.submit_get(contact, key, version, timeout),
            Self::Socket(c) => c.submit_get(contact, key, version, timeout),
        }
    }

    fn await_ticket(
        &self,
        ticket: Ticket,
        timeout: Duration,
    ) -> Result<TicketOutcome, dataflasks::core::GatewayError> {
        match self {
            Self::Async(c) => c.await_ticket(ticket, timeout),
            Self::Socket(c) => c.await_ticket(ticket, timeout),
        }
    }

    fn poll_completions(&self, out: &mut Vec<Completion>) {
        match self {
            Self::Async(c) => c.poll_completions(out),
            Self::Socket(c) => c.poll_completions(out),
        }
    }

    fn inflight(&self) -> usize {
        match self {
            Self::Async(c) => c.inflight(),
            Self::Socket(c) => c.inflight(),
        }
    }

    fn note_shed(&self) {
        match self {
            Self::Async(c) => c.note_shed(),
            Self::Socket(c) => c.note_shed(),
        }
    }
}

/// Spawns a fresh cluster of the configured shape on `backend`, lets the
/// gossip substrate start flowing, and preloads the key space at version 1.
fn spawn_loaded(args: &Args, spec: &ClusterSpec, plan: &ContactPlan, backend: Backend) -> Cluster {
    let cluster = match backend {
        Backend::Async => Cluster::Async(AsyncCluster::start_spec_with(
            spec,
            AsyncClusterConfig {
                workers: args.workers,
                ..AsyncClusterConfig::default()
            },
        )),
        Backend::Socket => Cluster::Socket(SocketCluster::start_spec_with(
            spec,
            SocketClusterConfig {
                workers: args.workers,
                transport: args.transport,
                ..SocketClusterConfig::default()
            },
        )),
    };
    // A bit over one shuffle period: rows measure with live gossip — and
    // the lazy dials it triggers — competing with requests.
    std::thread::sleep(std::time::Duration::from_millis(2_300));

    // Preload every record at version 1 through the pipelined path. The
    // pipeline is kept shallow (16) so the preload barely registers on the
    // cluster-lifetime `inflight_high_water` the rows report. Completions
    // harvested while waiting for a slot are tallied so they are not
    // awaited a second time.
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xF00D);
    let mut tickets = Vec::with_capacity(args.key_space);
    let mut acked: std::collections::HashSet<Ticket> = std::collections::HashSet::new();
    let mut out = Vec::new();
    for record in 0..args.key_space {
        let user_key = WorkloadGenerator::user_key(record);
        let key = Key::from_user_key(&user_key);
        let contact = plan.contact_for(key, &mut rng);
        while cluster.inflight() >= 16 {
            cluster.poll_completions(&mut out);
            if out.is_empty() {
                std::thread::yield_now();
            }
            for completion in out.drain(..) {
                assert!(matches!(completion.outcome, TicketOutcome::Acked(_)));
                acked.insert(completion.ticket);
            }
        }
        let ticket = cluster
            .submit_put(
                Some(contact),
                key,
                Version::new(1),
                Value::filled(args.value_size, (record % 251) as u8),
                Duration::from_secs(10),
            )
            .expect("preload submit");
        tickets.push(ticket);
    }
    for ticket in tickets {
        if acked.contains(&ticket) {
            continue;
        }
        let outcome = cluster
            .await_ticket(ticket, Duration::from_secs(10))
            .expect("preload ack");
        assert!(matches!(outcome, TicketOutcome::Acked(_)));
    }
    cluster
}

/// Measures the closed-loop blocking baseline: the identical operation
/// sequence, one ticket at a time (submit, await, repeat) — the pattern the
/// closed-loop latency benches use. Returns achieved ops/s.
fn run_blocking_baseline(
    args: &Args,
    spec: &ClusterSpec,
    plan: &ContactPlan,
    backend: Backend,
) -> f64 {
    let cluster = spawn_loaded(args, spec, plan, backend);
    let schedule = OpenLoopSchedule::generate(
        &OpenLoopSpec {
            offered_ops_per_s: 1_000.0, // pacing is ignored by the baseline
            operations: args.baseline_ops,
            read_fraction: args.read_fraction,
            key_space: args.key_space,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            value_size: args.value_size,
        },
        SEED,
    );
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xB10C);
    let start = Instant::now();
    let mut completed = 0usize;
    for op in schedule.ops() {
        let contact = plan.contact_for(op.key, &mut rng);
        let ticket = match op.kind {
            OperationKind::Read => cluster.submit_get(Some(contact), op.key, None, args.op_timeout),
            _ => cluster.submit_put(
                Some(contact),
                op.key,
                op.version.unwrap_or(Version::new(1)),
                op.value.clone(),
                args.op_timeout,
            ),
        };
        let Ok(ticket) = ticket else { continue };
        if cluster.await_ticket(ticket, args.op_timeout).is_ok() {
            completed += 1;
        }
    }
    let rate = completed as f64 / start.elapsed().as_secs_f64().max(1e-9);
    println!(
        "[{}] closed-loop blocking baseline: {completed}/{} ops, {rate:.0} ops/s",
        backend.name(),
        args.baseline_ops,
    );
    cluster.shutdown();
    rate
}

/// Runs one `(backend, offered rate)` row on a fresh cluster.
fn run_row(
    args: &Args,
    spec: &ClusterSpec,
    plan: &ContactPlan,
    backend: Backend,
    rate: f64,
) -> RawSweepRow {
    let operations = (rate * args.row_seconds).round() as usize;
    // One seed for every row: rows replay the identical key/kind sequence
    // and differ only in pacing.
    let schedule = OpenLoopSchedule::generate(
        &OpenLoopSpec {
            offered_ops_per_s: rate,
            operations,
            read_fraction: args.read_fraction,
            key_space: args.key_space,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            value_size: args.value_size,
        },
        SEED,
    );
    let cluster = spawn_loaded(args, spec, plan, backend);
    // Counters are cluster-lifetime; snapshot after the preload so the row
    // reports its own routed/shed deltas (the high-water mark stays a
    // lifetime max, but the preload pipelines only 16 deep).
    let (_, routed_before, sheds_before) = cluster.counters();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x09E4);
    let outcome = run_open_loop(
        &cluster,
        &schedule,
        args.inflight_cap,
        args.op_timeout,
        |op| plan.contact_for(op.key, &mut rng),
    );
    let (high_water, routed, sheds) = cluster.counters();
    cluster.shutdown();
    row_from_outcome(
        backend,
        rate,
        args,
        &outcome,
        high_water,
        routed - routed_before,
        sheds - sheds_before,
    )
}

fn row_from_outcome(
    backend: Backend,
    rate: f64,
    args: &Args,
    outcome: &OpenLoopOutcome,
    high_water: u64,
    routed: u64,
    sheds: u64,
) -> RawSweepRow {
    let mut lat = outcome.latencies_us.clone();
    let achieved = outcome.achieved_ops_per_s();
    let metric = |name: &'static str, value: f64| (name, render_value(name, value));
    let row: RawSweepRow = vec![
        ("backend", format!("\"{}\"", backend.name())),
        metric("offered_ops_per_s", rate),
        metric("ops_scheduled", outcome.scheduled as f64),
        metric("ops_submitted", outcome.submitted as f64),
        metric("ops_completed", outcome.completed as f64),
        metric("op_timeouts", outcome.timeouts as f64),
        metric("openloop_sheds", sheds as f64),
        metric("inflight_cap", args.inflight_cap as f64),
        metric("inflight_high_water", high_water as f64),
        metric("completions_routed", routed as f64),
        metric("achieved_ops_per_s", achieved),
        metric("latency_p50_us", percentile(&mut lat, 0.50)),
        metric("latency_p99_us", percentile(&mut lat, 0.99)),
        metric("latency_p999_us", percentile(&mut lat, 0.999)),
    ];
    for (name, value) in &row {
        println!("[{} @ {rate:.0} ops/s] {name}: {value}", backend.name());
    }
    row
}

/// Renders the numeric part of a row through the shared integer/decimal
/// convention (`render_sweep_metric` emits `"name": value`; rows need the
/// value alone).
fn render_value(name: &str, value: f64) -> String {
    let rendered = render_sweep_metric(name, value);
    rendered
        .split_once(": ")
        .map(|(_, v)| v.to_string())
        .unwrap_or_else(|| format!("{value:.2}"))
}

/// Prints the knee of a backend's achieved-vs-offered curve: the highest
/// offered rate the backend still served at ≥90%.
fn report_knee(rows: &[RawSweepRow], backend: Backend, baseline: f64) {
    let field = |row: &RawSweepRow, name: &str| -> f64 {
        row.iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.trim_matches('"').parse().ok())
            .unwrap_or(0.0)
    };
    let mut knee: Option<(f64, f64)> = None;
    for row in rows.iter().filter(|row| {
        row.iter()
            .any(|(n, v)| *n == "backend" && v.trim_matches('"') == backend.name())
    }) {
        let offered = field(row, "offered_ops_per_s");
        let achieved = field(row, "achieved_ops_per_s");
        if achieved >= 0.9 * offered {
            knee = Some((offered, achieved));
        }
    }
    match knee {
        Some((offered, achieved)) => {
            let vs = if baseline > 0.0 {
                format!(
                    " ({:.2}x the closed-loop blocking baseline)",
                    achieved / baseline
                )
            } else {
                String::new()
            };
            println!(
                "[{}] knee: {achieved:.0} ops/s achieved at {offered:.0} offered{vs}",
                backend.name(),
            );
        }
        None => println!(
            "[{}] knee below the lowest offered rate — all rows overloaded",
            backend.name(),
        ),
    }
}

/// Renders the `history` header object recording the closed-loop blocking
/// baselines the sweep is compared against.
fn render_history(baselines: &[(Backend, f64)], args: &Args) -> String {
    let mut out = String::from("{\n    \"closed_loop_blocking_baseline\": {\n");
    out.push_str(&format!(
        "      \"note\": \"one ticket at a time over the identical operation sequence ({} ops, read fraction {:.2})\",\n",
        args.baseline_ops, args.read_fraction,
    ));
    for (i, (backend, rate)) in baselines.iter().enumerate() {
        let comma = if i + 1 == baselines.len() { "" } else { "," };
        out.push_str(&format!(
            "      \"{}_ops_per_s\": {rate:.2}{comma}\n",
            backend.name(),
        ));
    }
    out.push_str("    }\n  }");
    out
}
