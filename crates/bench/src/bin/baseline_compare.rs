//! Extension experiment — DataFlasks (unstructured, epidemic) versus a
//! structured DHT baseline under identical workloads and churn.
//!
//! The paper's introduction argues that DHT-based tuple-stores assume a
//! moderately stable environment. This experiment loads the same objects into
//! both systems, applies the same fraction of node failures, and reports the
//! surviving object availability plus the message cost per operation.
//!
//! Run with `cargo run -p dataflasks-bench --release --bin baseline_compare`.

use dataflasks::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let nodes = parse_arg(1, 200);
    let objects = parse_arg(2, 100);
    let crash_fraction = 0.3;
    println!(
        "# Baseline comparison: {nodes} nodes, {objects} objects, {:.0}% crashes",
        crash_fraction * 100.0
    );
    println!(
        "system,request_messages_per_op,availability_after_churn,mean_replication_after_churn"
    );

    let dataflasks = run_dataflasks(nodes, objects, crash_fraction);
    println!(
        "dataflasks,{:.1},{:.3},{:.1}",
        dataflasks.0, dataflasks.1, dataflasks.2
    );
    let dht_no_repair = run_dht(nodes, objects, crash_fraction, false);
    println!(
        "dht_no_repair,{:.1},{:.3},{:.1}",
        dht_no_repair.0, dht_no_repair.1, dht_no_repair.2
    );
    let dht_repair = run_dht(nodes, objects, crash_fraction, true);
    println!(
        "dht_with_repair,{:.1},{:.3},{:.1}",
        dht_repair.0, dht_repair.1, dht_repair.2
    );
    println!("# expectation: the DHT is far cheaper per operation (structured routing) but");
    println!("# loses objects once a key's whole replica set crashes, while DataFlasks'");
    println!("# slice-wide replication keeps objects available at a higher message cost.");
}

/// Returns (request messages per operation, availability, mean replication).
fn run_dataflasks(nodes: usize, objects: usize, crash_fraction: f64) -> (f64, f64, f64) {
    let slices = 4u32;
    let config = NodeConfig::for_system_size(nodes, slices);
    let mut sim = Simulation::new(SimConfig::default());
    sim.spawn_cluster(nodes, config);
    sim.run_for(Duration::from_secs(60));
    let client = sim.add_client();
    let mut generator = WorkloadGenerator::new(WorkloadSpec::write_only(objects, 0), 7);
    let mut keys = Vec::new();
    let mut at = sim.now();
    for op in generator.load_phase() {
        keys.push(op.key);
        at += Duration::from_millis(50);
        sim.schedule_put(
            at,
            client,
            op.key,
            op.version.unwrap_or(Version::new(1)),
            op.value,
        );
    }
    sim.run_until(at + Duration::from_secs(30));
    let request_messages: u64 = sim
        .node_stats()
        .iter()
        .map(dataflasks::core::NodeStats::request_messages)
        .sum();
    let per_op = request_messages as f64 / objects.max(1) as f64;

    let crashes = (nodes as f64 * crash_fraction) as usize;
    let start = sim.now();
    sim.schedule_churn(start, start + Duration::from_secs(60), crashes, 0);
    sim.run_until(start + Duration::from_secs(120));

    let available = keys
        .iter()
        .filter(|&&k| sim.replication_factor(k) > 0)
        .count();
    let mean_replication = keys
        .iter()
        .map(|&k| sim.replication_factor(k) as f64)
        .sum::<f64>()
        / keys.len().max(1) as f64;
    (
        per_op,
        available as f64 / keys.len().max(1) as f64,
        mean_replication,
    )
}

/// Returns (request messages per operation, availability, mean replication).
fn run_dht(nodes: usize, objects: usize, crash_fraction: f64, repair: bool) -> (f64, f64, f64) {
    let mut dht = DhtCluster::new(nodes, 3);
    let mut generator = WorkloadGenerator::new(WorkloadSpec::write_only(objects, 0), 7);
    let mut keys = Vec::new();
    for op in generator.load_phase() {
        keys.push(op.key);
        dht.put(op.key, op.version.unwrap_or(Version::new(1)), op.value);
    }
    let per_op = dht.stats().request_messages as f64 / objects.max(1) as f64;

    let mut rng = StdRng::seed_from_u64(99);
    let mut victims = dht.alive_nodes();
    victims.shuffle(&mut rng);
    victims.truncate((nodes as f64 * crash_fraction) as usize);
    for victim in victims {
        dht.crash(victim);
        if repair {
            // A well-operated DHT re-replicates after every membership change.
            dht.rebalance();
        }
    }
    let availability = dht.availability(&keys);
    let mean_replication = keys
        .iter()
        .map(|&k| dht.replication_of(k) as f64)
        .sum::<f64>()
        / keys.len().max(1) as f64;
    (per_op, availability, mean_replication)
}

fn parse_arg(index: usize, default: usize) -> usize {
    std::env::args()
        .nth(index)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(default)
}
