//! Experiment harness shared by the figure-regeneration binaries and the
//! Criterion benches.
//!
//! Every experiment follows the same skeleton (build a simulated cluster, let
//! the gossip substrate converge, drive a YCSB-style workload, report the
//! per-node message statistics), so the harness lives here and the binaries
//! only differ in the parameter sweep they run. See `DESIGN.md` §4 for the
//! experiment-to-paper mapping and `EXPERIMENTS.md` for recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dataflasks::prelude::*;
use dataflasks::sim::Distribution;

/// Parameters of one write-workload experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Number of nodes in the simulated cluster.
    pub nodes: usize,
    /// Number of slices the system is divided into.
    pub slices: u32,
    /// Number of write operations driven through the cluster.
    pub operations: usize,
    /// Virtual time granted to the gossip substrate before the workload
    /// starts (peer sampling and slicing must converge first).
    pub warmup: Duration,
    /// Virtual time granted after the last operation for dissemination to
    /// finish.
    pub drain: Duration,
    /// Interval between consecutive client operations.
    pub op_interval: Duration,
    /// Payload size of written values, in bytes.
    pub value_size: usize,
    /// Whether anti-entropy repair runs during the experiment (the paper's
    /// configuration leaves it off; the churn experiment turns it on).
    pub anti_entropy: bool,
    /// Contact-selection policy of the client.
    pub policy: LoadBalancerPolicy,
    /// Seed controlling every random choice of the run.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The configuration skeleton used by the paper's two figures: a
    /// write-only load over a warmed-up cluster with the prototype's random
    /// load balancer and no anti-entropy.
    #[must_use]
    pub fn paper_default(nodes: usize, slices: u32, operations: usize) -> Self {
        Self {
            nodes,
            slices,
            operations,
            warmup: Duration::from_secs(60),
            drain: Duration::from_secs(30),
            op_interval: Duration::from_millis(50),
            value_size: 128,
            anti_entropy: false,
            policy: LoadBalancerPolicy::Random,
            seed: 0xDF2013,
        }
    }
}

/// Sweep fields that are counts (or identifiers) by construction: they are
/// emitted as JSON integers (`"dials": 62`), never as decorated floats
/// (`62.00`), so downstream tooling — and the CI guard's exact greps —
/// parse them as the integers they are. Every measured quantity (rates,
/// latencies, per-node ratios) keeps two decimals.
const INTEGER_FIELDS: &[&str] = &[
    "workers",
    "nodes",
    "slices",
    "spawn_ms",
    "spawn_build_ms",
    "spawn_arm_ms",
    "puts_submitted",
    "puts_completed",
    "gets_submitted",
    "gets_answered",
    "get_hits",
    "mailbox_saturations",
    "dials",
    "dial_retries",
    "wire_rejects",
    "gossip_messages",
    "ae_chunks_skipped",
    "replica_objects_total",
    "arena_fresh_buffers",
    "arena_recycled_buffers",
    "arena_steady_fresh_delta",
    "sim_seconds",
    "run_wall_ms",
    "events_dispatched",
    "timer_fires",
    "messages_delivered",
    "messages_dropped",
    "crashes",
    "joins",
    "alive_end",
    "peak_rss_kb",
    "ops_scheduled",
    "ops_submitted",
    "ops_completed",
    "op_timeouts",
    "openloop_sheds",
    "inflight_cap",
    "inflight_high_water",
    "completions_routed",
];

/// Renders one metric line of the sweep-JSON schema shared by
/// `BENCH_async.json` and `BENCH_socket.json`: count fields (see
/// `INTEGER_FIELDS`) as true JSON integers, measured quantities with two
/// decimals.
#[must_use]
pub fn render_sweep_metric(name: &str, value: f64) -> String {
    if INTEGER_FIELDS.contains(&name) {
        format!("\"{name}\": {value:.0}")
    } else {
        format!("\"{name}\": {value:.2}")
    }
}

/// One row of a worker-sweep bench run: metric name → value, in emission
/// order (the first entry is conventionally `workers`).
pub type SweepRow = Vec<(&'static str, f64)>;

/// Writes a worker-sweep bench artifact in the JSON schema shared by
/// `BENCH_async.json` and `BENCH_socket.json`: the pre-rendered top-level
/// fields, then one object per sweep row (each metric through
/// [`render_sweep_metric`]).
///
/// `header` values are inserted verbatim, so callers render them as JSON
/// themselves (`"220.00"`, `"\"tcp\""`).
///
/// # Panics
///
/// Panics if the artifact cannot be written.
pub fn write_sweep_json(path: &str, header: &[(&str, String)], rows: &[SweepRow]) {
    let mut json = String::from("{\n");
    for (name, value) in header {
        json.push_str(&format!("  \"{name}\": {value},\n"));
    }
    json.push_str("  \"sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str("    {\n");
        for (j, (name, value)) in row.iter().enumerate() {
            let comma = if j + 1 == row.len() { "" } else { "," };
            let metric = render_sweep_metric(name, *value);
            json.push_str(&format!("      {metric}{comma}\n"));
        }
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    }}{comma}\n"));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json).unwrap_or_else(|error| panic!("write {path}: {error}"));
    println!("wrote {path}");
}

/// One row of a mixed-type sweep: metric name → pre-rendered JSON value
/// (`"12"`, `"3.50"`, `"\"socket\""`). Used by artifacts whose rows carry
/// non-numeric columns (the open-loop sweep tags every row with its
/// backend).
pub type RawSweepRow = Vec<(&'static str, String)>;

/// Like [`write_sweep_json`], but the row values are inserted verbatim, so
/// rows can mix integers, floats and strings. Render numeric fields through
/// [`render_sweep_metric`] to keep the integer/decimal convention.
///
/// # Panics
///
/// Panics if the artifact cannot be written.
pub fn write_raw_sweep_json(path: &str, header: &[(&str, String)], rows: &[RawSweepRow]) {
    let mut json = String::from("{\n");
    for (name, value) in header {
        json.push_str(&format!("  \"{name}\": {value},\n"));
    }
    json.push_str("  \"sweep\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str("    {\n");
        for (j, (name, value)) in row.iter().enumerate() {
            let comma = if j + 1 == row.len() { "" } else { "," };
            json.push_str(&format!("      \"{name}\": {value}{comma}\n"));
        }
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    }}{comma}\n"));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json).unwrap_or_else(|error| panic!("write {path}: {error}"));
    println!("wrote {path}");
}

/// What one open-loop run produced (see [`run_open_loop`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopOutcome {
    /// Operations in the schedule.
    pub scheduled: usize,
    /// Operations actually submitted (scheduled minus sheds and submit
    /// failures).
    pub submitted: usize,
    /// Operations that completed (acked puts, answered gets — a definitive
    /// miss counts as an answer).
    pub completed: usize,
    /// Operations whose ticket expired without any reply.
    pub timeouts: usize,
    /// Arrivals dropped because the in-flight cap was reached — the
    /// overload signal of an open-loop run (a closed-loop harness would
    /// silently stretch the schedule instead).
    pub shed: usize,
    /// Per-completion latency in microseconds, measured from each
    /// operation's **scheduled arrival** (not its submission), so time an
    /// operation spent waiting behind a stalled pipeline is charged to it —
    /// the coordinated-omission-free convention.
    pub latencies_us: Vec<f64>,
    /// Wall-clock span from the first scheduled arrival to the last
    /// harvested completion.
    pub wall: std::time::Duration,
}

impl OpenLoopOutcome {
    /// Achieved throughput: completions over the measured wall span.
    #[must_use]
    pub fn achieved_ops_per_s(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Drives one [`OpenLoopSchedule`] through a pipelined client: submits each
/// operation at (or as soon as possible after) its scheduled arrival via
/// `submit_put`/`submit_get` to the contact `contact_for` picks, harvests
/// completions with `poll_completions` between arrivals, and sheds arrivals
/// that find `inflight_cap` operations already in flight (counted, never
/// queued — queueing would back-pressure the schedule and hide overload).
/// After the last arrival, waits up to `op_timeout` plus a grace for the
/// stragglers.
pub fn run_open_loop<C: PipelinedClient + ?Sized>(
    client: &C,
    schedule: &dataflasks::workload::OpenLoopSchedule,
    inflight_cap: usize,
    op_timeout: Duration,
    mut contact_for: impl FnMut(&dataflasks::workload::OpenLoopOp) -> NodeId,
) -> OpenLoopOutcome {
    let mut arrivals: std::collections::HashMap<RequestId, u64> =
        std::collections::HashMap::with_capacity(schedule.ops().len());
    let mut outcome = OpenLoopOutcome {
        scheduled: schedule.ops().len(),
        submitted: 0,
        completed: 0,
        timeouts: 0,
        shed: 0,
        latencies_us: Vec::with_capacity(schedule.ops().len()),
        wall: std::time::Duration::ZERO,
    };
    let epoch = std::time::Instant::now();
    let mut last_completion = std::time::Duration::ZERO;
    let mut harvest: Vec<dataflasks::core::Completion> = Vec::new();
    fn absorb(
        harvest: &mut Vec<dataflasks::core::Completion>,
        arrivals: &mut std::collections::HashMap<RequestId, u64>,
        outcome: &mut OpenLoopOutcome,
        last_completion: &mut std::time::Duration,
        now_micros: u64,
    ) {
        for completion in harvest.drain(..) {
            let Some(arrival) = arrivals.remove(&completion.ticket.request_id()) else {
                continue;
            };
            match completion.outcome {
                TicketOutcome::Acked(_) | TicketOutcome::Hit(_) | TicketOutcome::Miss => {
                    outcome.completed += 1;
                    outcome
                        .latencies_us
                        .push(now_micros.saturating_sub(arrival) as f64);
                    *last_completion = std::time::Duration::from_micros(now_micros);
                }
                TicketOutcome::TimedOut => outcome.timeouts += 1,
            }
        }
    }

    for op in schedule.ops() {
        // Pace to the schedule, harvesting while we wait. Waits are spent
        // sleeping in sub-millisecond slices (bounding both the harvest
        // granularity and the pacing error), never spinning: on a
        // single-core host a spinning submitter would starve the very
        // workers it is trying to measure.
        loop {
            let now = epoch.elapsed();
            let now_micros = now.as_micros() as u64;
            if now_micros >= op.arrival_micros {
                break;
            }
            client.poll_completions(&mut harvest);
            absorb(
                &mut harvest,
                &mut arrivals,
                &mut outcome,
                &mut last_completion,
                now_micros,
            );
            let remaining = op.arrival_micros - now_micros;
            if remaining > 200 {
                std::thread::sleep(std::time::Duration::from_micros(remaining.min(500)));
            } else {
                std::thread::yield_now();
            }
        }
        if client.inflight() >= inflight_cap {
            client.note_shed();
            outcome.shed += 1;
            continue;
        }
        let submitted = match op.kind {
            OperationKind::Read => {
                client.submit_get(Some(contact_for(op)), op.key, None, op_timeout)
            }
            OperationKind::Update | OperationKind::Insert => client.submit_put(
                Some(contact_for(op)),
                op.key,
                op.version.unwrap_or(Version::new(1)),
                op.value.clone(),
                op_timeout,
            ),
        };
        if let Ok(ticket) = submitted {
            arrivals.insert(ticket.request_id(), op.arrival_micros);
            outcome.submitted += 1;
        }
    }

    // Post-schedule drain: stragglers get their full timeout plus a grace.
    let drain_deadline = std::time::Instant::now()
        + std::time::Duration::from_millis(op_timeout.as_millis())
        + std::time::Duration::from_secs(2);
    while client.inflight() > 0 && std::time::Instant::now() < drain_deadline {
        client.poll_completions(&mut harvest);
        let now_micros = epoch.elapsed().as_micros() as u64;
        absorb(
            &mut harvest,
            &mut arrivals,
            &mut outcome,
            &mut last_completion,
            now_micros,
        );
        if client.inflight() > 0 {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    client.poll_completions(&mut harvest);
    let now_micros = epoch.elapsed().as_micros() as u64;
    absorb(
        &mut harvest,
        &mut arrivals,
        &mut outcome,
        &mut last_completion,
        now_micros,
    );
    outcome.wall = last_completion.max(std::time::Duration::from_millis(1));
    outcome
}

/// Prints a sweep's combined put+get throughput per row, relative to the
/// first (baseline) row. `suffix` is appended to each row label (the socket
/// bench names its transport there).
pub fn print_scaling_summary(rows: &[SweepRow], suffix: &str) {
    let metric = |row: &SweepRow, name: &str| -> f64 {
        row.iter()
            .find(|(n, _)| *n == name)
            .map_or(0.0, |(_, v)| *v)
    };
    let Some(baseline) = rows.first() else { return };
    let base =
        metric(baseline, "put_throughput_ops_per_s") + metric(baseline, "get_throughput_ops_per_s");
    for row in rows {
        let combined =
            metric(row, "put_throughput_ops_per_s") + metric(row, "get_throughput_ops_per_s");
        println!(
            "workers {:>2}{suffix}: put+get {:>10.0} ops/s ({:.2}x of the {}-worker baseline)",
            metric(row, "workers"),
            combined,
            if base > 0.0 { combined / base } else { 0.0 },
            metric(baseline, "workers"),
        );
    }
}

/// Drains environment replies until `total` distinct requests completed
/// (first matching reply wins), completions stop making progress (a raw
/// epidemic search can die of TTL; clients would retry), or a generous cap
/// expires. Returns the completion count and the elapsed time since `start`
/// at the last completion — the honest numerator and denominator for the
/// throughput the scaling benches report.
pub fn await_completions<E: Environment + ?Sized>(
    env: &mut E,
    start: std::time::Instant,
    total: usize,
    mut matches: impl FnMut(&dataflasks::core::ClientReply) -> bool,
) -> (usize, std::time::Duration) {
    let mut done: std::collections::HashSet<RequestId> =
        std::collections::HashSet::with_capacity(total);
    let cap = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let progress_grace = std::time::Duration::from_secs(3);
    let mut last_progress = std::time::Instant::now();
    let mut elapsed_at_last = start.elapsed();
    while done.len() < total && std::time::Instant::now() < cap {
        for reply in env.drain_effects(Duration::from_millis(200)) {
            if matches(&reply) && done.insert(reply.request) {
                last_progress = std::time::Instant::now();
                elapsed_at_last = start.elapsed();
            }
        }
        if last_progress.elapsed() > progress_grace {
            break;
        }
    }
    (
        done.len(),
        elapsed_at_last.max(std::time::Duration::from_millis(1)),
    )
}

/// The `q`-quantile of the samples (sorts in place).
#[must_use]
pub fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let index = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[index]
}

/// The measurements extracted from one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Number of nodes simulated.
    pub nodes: usize,
    /// Number of slices configured.
    pub slices: u32,
    /// Number of operations driven.
    pub operations: usize,
    /// Per-node request messages (sent + received requests and replies) —
    /// the paper's Figure 3/4 metric.
    pub request_messages_per_node: Distribution,
    /// Per-node total messages including background gossip.
    pub total_messages_per_node: Distribution,
    /// Fraction of operations that completed successfully.
    pub success_ratio: f64,
    /// Mean number of replicas holding each written object at the end.
    pub mean_replication: f64,
    /// Number of distinct slices that ended up populated.
    pub populated_slices: usize,
}

impl ExperimentResult {
    /// The CSV header matching [`Self::to_csv_row`].
    #[must_use]
    pub fn csv_header() -> &'static str {
        "nodes,slices,operations,request_msgs_per_node_mean,request_msgs_per_node_stddev,total_msgs_per_node_mean,success_ratio,mean_replication,populated_slices"
    }

    /// One CSV row of the result.
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{:.1},{:.1},{:.1},{:.3},{:.1},{}",
            self.nodes,
            self.slices,
            self.operations,
            self.request_messages_per_node.mean,
            self.request_messages_per_node.std_dev,
            self.total_messages_per_node.mean,
            self.success_ratio,
            self.mean_replication,
            self.populated_slices
        )
    }
}

/// Runs one write-only-workload experiment (the setting of Figures 3 and 4).
#[must_use]
pub fn run_write_experiment(config: ExperimentConfig) -> ExperimentResult {
    let mut node_config = NodeConfig::for_system_size(config.nodes, config.slices);
    if !config.anti_entropy {
        node_config = node_config.without_anti_entropy();
    }
    let mut sim = Simulation::new(SimConfig {
        seed: config.seed,
        ..SimConfig::default()
    });
    sim.set_client_policy(config.policy);
    sim.spawn_cluster(config.nodes, node_config);
    sim.run_for(config.warmup);

    let client = sim.add_client();
    let spec = WorkloadSpec::write_only(config.operations, 0).with_value_size(config.value_size);
    let mut generator = WorkloadGenerator::new(spec, config.seed ^ 0x5EED);
    let operations: Vec<Operation> = generator.load_phase().collect();
    let mut written_keys = Vec::with_capacity(operations.len());
    let mut at = sim.now();
    for op in operations {
        written_keys.push(op.key);
        at += config.op_interval;
        sim.schedule_put(
            at,
            client,
            op.key,
            op.version.unwrap_or(Version::new(1)),
            op.value,
        );
    }
    sim.run_until(at + config.drain);

    let report = sim.cluster_report();
    let mean_replication = if written_keys.is_empty() {
        0.0
    } else {
        written_keys
            .iter()
            .map(|&k| sim.replication_factor(k) as f64)
            .sum::<f64>()
            / written_keys.len() as f64
    };
    ExperimentResult {
        nodes: config.nodes,
        slices: config.slices,
        operations: config.operations,
        request_messages_per_node: report.request_messages_per_node,
        total_messages_per_node: report.total_messages_per_node,
        success_ratio: sim.success_ratio(),
        mean_replication,
        populated_slices: sim.slice_populations().len(),
    }
}

/// The node counts swept by the paper's figures.
pub const PAPER_NODE_COUNTS: [usize; 6] = [500, 1000, 1500, 2000, 2500, 3000];

/// Number of objects each slice is provisioned for when sizing the workload
/// (the YCSB load is proportional to the system capacity, see DESIGN.md §4).
pub const OBJECTS_PER_SLICE: usize = 40;

/// Builds the Figure 3 configuration for a given system size: a constant
/// number of slices (ten, as in the paper), so the system capacity — and the
/// write-only load filling it — stays constant across the sweep.
#[must_use]
pub fn figure3_config(nodes: usize) -> ExperimentConfig {
    let slices = 10;
    ExperimentConfig::paper_default(nodes, slices, OBJECTS_PER_SLICE * slices as usize)
}

/// Builds the Figure 4 configuration for a given system size: the number of
/// slices grows proportionally to the node count (constant slice size of 50
/// nodes, i.e. constant replication factor), so the capacity — and the load —
/// grows with the system.
#[must_use]
pub fn figure4_config(nodes: usize) -> ExperimentConfig {
    let slices = (nodes / 50).max(1) as u32;
    ExperimentConfig::paper_default(nodes, slices, OBJECTS_PER_SLICE * slices as usize)
}

/// Runs a sweep and prints one CSV row per system size (plus the header).
pub fn run_sweep<F>(label: &str, node_counts: &[usize], config_for: F) -> Vec<ExperimentResult>
where
    F: Fn(usize) -> ExperimentConfig,
{
    println!("# {label}");
    println!("{}", ExperimentResult::csv_header());
    let mut results = Vec::with_capacity(node_counts.len());
    for &nodes in node_counts {
        let result = run_write_experiment(config_for(nodes));
        println!("{}", result.to_csv_row());
        results.push(result);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_configs_follow_the_paper_scaling() {
        let f3_small = figure3_config(500);
        let f3_large = figure3_config(3000);
        assert_eq!(f3_small.slices, 10);
        assert_eq!(f3_large.slices, 10);
        assert_eq!(f3_small.operations, f3_large.operations);

        let f4_small = figure4_config(500);
        let f4_large = figure4_config(3000);
        assert_eq!(f4_small.slices, 10);
        assert_eq!(f4_large.slices, 60);
        assert!(f4_large.operations > f4_small.operations);
        assert_eq!(f4_large.operations, OBJECTS_PER_SLICE * 60);
    }

    #[test]
    fn small_write_experiment_produces_consistent_results() {
        let mut config = ExperimentConfig::paper_default(40, 4, 20);
        config.warmup = Duration::from_secs(40);
        config.drain = Duration::from_secs(20);
        let result = run_write_experiment(config);
        assert_eq!(result.nodes, 40);
        assert_eq!(result.operations, 20);
        assert!(
            result.success_ratio > 0.8,
            "success {}",
            result.success_ratio
        );
        assert!(
            result.mean_replication >= 1.0,
            "replication {}",
            result.mean_replication
        );
        assert!(result.request_messages_per_node.mean > 0.0);
        assert!(
            result.total_messages_per_node.mean >= result.request_messages_per_node.mean,
            "total must include gossip"
        );
        assert!(result.populated_slices >= 2);
        let row = result.to_csv_row();
        assert_eq!(
            row.split(',').count(),
            ExperimentResult::csv_header().split(',').count()
        );
    }

    #[test]
    fn csv_header_and_row_have_matching_arity() {
        let result = ExperimentResult {
            nodes: 1,
            slices: 1,
            operations: 0,
            request_messages_per_node: Distribution::from_samples(&[1.0]),
            total_messages_per_node: Distribution::from_samples(&[2.0]),
            success_ratio: 1.0,
            mean_replication: 0.0,
            populated_slices: 1,
        };
        assert_eq!(
            result.to_csv_row().split(',').count(),
            ExperimentResult::csv_header().split(',').count()
        );
    }
}
