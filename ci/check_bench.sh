#!/usr/bin/env bash
# Guard a bench sweep artifact: every expected sweep row must be present,
# every row must have completed every operation it submitted, and the
# schema-specific throughput/latency columns must be recorded.
#
# Usage: ci/check_bench.sh <bench.json> <row-size>...
#
# Three artifact schemas are understood, detected from the artifact itself:
#
#   * worker sweeps (BENCH_async.json, BENCH_socket.json): rows are keyed
#     by `"workers": N` and must record p99.9 latency tails;
#   * simulator sweeps (BENCH_sim.json): rows are keyed by `"nodes": N`
#     and must record a positive `events_per_s` throughput figure;
#   * open-loop sweeps (BENCH_openloop.json): rows are keyed by
#     `"offered_ops_per_s": N` (per backend, the offered-load column must be
#     strictly increasing), counts are integers, every row completed at
#     least one operation, and the coordinated-omission-free latency
#     distribution must include the p99.9 tail;
#   * nemesis sweeps (BENCH_nemesis.json): rows are keyed by `"nodes": N`,
#     the fault/convergence counters are integers, and every row must
#     record zero invariant violations.
#
# Shared by the async, socket and sim bench smoke jobs. The bench binaries
# emit count metrics as JSON integers (`"workers": 4`, `"puts_completed":
# 150`) precisely so these checks never depend on float formatting.
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <bench.json> <row-size>..." >&2
    exit 2
fi

file="$1"
shift

if [ ! -f "$file" ]; then
    echo "$file: bench artifact missing" >&2
    exit 1
fi

# Schema detection: nemesis sweeps carry a convergence-rounds column,
# simulator sweeps an events-per-second throughput column, open-loop sweeps
# an offered-load column; worker sweeps have none of them.
if grep -q '"convergence_rounds":' "$file"; then
    schema=nemesis
    row_key=nodes
elif grep -q '"events_per_s":' "$file"; then
    schema=sim
    row_key=nodes
elif grep -q '"offered_ops_per_s":' "$file"; then
    schema=openloop
    row_key=offered_ops_per_s
else
    schema=workers
    row_key=workers
fi

if grep -E '"(puts_completed|gets_answered|ops_completed)": 0(\.00)?,?$' "$file"; then
    echo "$file: a sweep row recorded zero completed operations" >&2
    exit 1
fi

# Every row must have finished its full workload: the submitted and completed
# counters are compared row by row (grep preserves row order on both sides).
# Open-loop rows are exempt by design: overload sheds arrivals (submitted <
# scheduled) and completions can time out — that visibility is the point.
# Nemesis rows are exempt too: they measure a cluster *under fault
# injection*, where timed-out operations are the signal, not a failure.
check_all_completed() {
    local submitted_field="$1" completed_field="$2"
    local submitted completed
    submitted=$(grep -oE "\"${submitted_field}\": [0-9]+" "$file" | awk '{print $2}')
    completed=$(grep -oE "\"${completed_field}\": [0-9]+" "$file" | awk '{print $2}')
    if [ -z "$submitted" ]; then
        echo "$file: no ${submitted_field} column found" >&2
        exit 1
    fi
    if [ "$submitted" != "$completed" ]; then
        echo "$file: ${completed_field} does not equal ${submitted_field} on every row" >&2
        exit 1
    fi
}
if [ "$schema" != openloop ] && [ "$schema" != nemesis ]; then
    check_all_completed puts_submitted puts_completed
    check_all_completed gets_submitted gets_answered
fi

if [ "$schema" = nemesis ]; then
    # Fault and convergence counters must be plain JSON integers.
    for column in acked_puts convergence_rounds rounds_budget invariant_checks \
        invariant_violations frames_dropped_injected frames_duplicated_injected \
        partition_refusals corrupt_injected wire_rejects replayed_identically \
        wall_ms; do
        if ! grep -Eq "\"${column}\": [0-9]+,?$" "$file"; then
            echo "$file: ${column} missing or not an integer" >&2
            exit 1
        fi
    done
    # The pass criterion: zero invariant violations on every row.
    if grep -Eq '"invariant_violations": [1-9][0-9]*,?$' "$file"; then
        echo "$file: a nemesis row recorded invariant violations" >&2
        exit 1
    fi
    # The availability-under-fault column must be present on every row.
    if ! grep -q '"availability_under_fault":' "$file"; then
        echo "$file: availability_under_fault column missing" >&2
        exit 1
    fi
fi

if [ "$schema" = openloop ]; then
    # Count columns must be plain JSON integers.
    for column in ops_scheduled ops_submitted ops_completed op_timeouts \
        openloop_sheds inflight_cap inflight_high_water completions_routed; do
        if ! grep -Eq "\"${column}\": [0-9]+,?$" "$file"; then
            echo "$file: ${column} missing or not an integer" >&2
            exit 1
        fi
    done
    # The coordinated-omission-free latency distribution must include the
    # p99.9 tail on every row.
    for column in latency_p50_us latency_p99_us latency_p999_us; do
        if ! grep -q "\"${column}\":" "$file"; then
            echo "$file: ${column} column missing from sweep rows" >&2
            exit 1
        fi
    done
    # The closed-loop blocking baselines the sweep is compared against must
    # be preserved in the history header.
    if ! grep -q '"closed_loop_blocking_baseline":' "$file"; then
        echo "$file: closed_loop_blocking_baseline history missing" >&2
        exit 1
    fi
    # Within each backend the offered-load column must be strictly
    # increasing in file order: a shuffled or duplicated sweep would make
    # the knee meaningless.
    if ! awk '
        /"backend":/ { gsub(/[",]/, ""); backend = $2 }
        /"offered_ops_per_s":/ {
            gsub(/,/, "")
            rate = $2 + 0
            if (backend in last && rate <= last[backend]) bad = 1
            last[backend] = rate
        }
        END { exit bad }
    ' "$file"; then
        echo "$file: offered_ops_per_s is not strictly increasing per backend" >&2
        exit 1
    fi
fi

if [ "$schema" = sim ]; then
    # Count columns must be plain integers (no scientific notation, no
    # floats) so diffs of the tracked artifact stay meaningful.
    for column in events_dispatched timer_fires messages_delivered alive_end; do
        if ! grep -Eq "\"${column}\": [0-9]+,?$" "$file"; then
            echo "$file: ${column} missing or not an integer" >&2
            exit 1
        fi
    done
    # Throughput must be present and positive on every row: an events_per_s
    # of zero means the event loop never ran.
    if grep -E '"events_per_s": (0(\.0+)?|-[0-9.]+),?$' "$file"; then
        echo "$file: a sweep row recorded non-positive events_per_s" >&2
        exit 1
    fi
    if ! grep -q '"events_per_s":' "$file"; then
        echo "$file: events_per_s column missing from sweep rows" >&2
        exit 1
    fi
elif [ "$schema" = workers ]; then
    # The latency distribution must include the p99.9 tail, not just p50/p99.
    for column in put_latency_p999_us get_latency_p999_us; do
        if ! grep -q "\"${column}\":" "$file"; then
            echo "$file: ${column} column missing from sweep rows" >&2
            exit 1
        fi
    done
fi

# Offered-load values render with decimals ("offered_ops_per_s": 600.00);
# row sizes may be given as integers.
for size in "$@"; do
    if ! grep -Eq "\"${row_key}\": ${size}(\.[0-9]+)?,?$" "$file"; then
        echo "$file: sweep row for ${size} ${row_key} missing" >&2
        exit 1
    fi
done

echo "$file: all rows present (${row_key}: $*), every row completed all its ops, ${schema} columns recorded"
