#!/usr/bin/env bash
# Guard a bench sweep artifact: every expected worker-count row must be
# present, every row must have completed every operation it submitted, and
# the tail-latency columns must be recorded.
#
# Usage: ci/check_bench.sh <bench.json> <worker-count>...
#
# Shared by the async and socket bench smoke jobs. The bench binaries emit
# count metrics as JSON integers (`"workers": 4`, `"puts_completed": 150`)
# precisely so these checks never depend on float formatting.
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <bench.json> <worker-count>..." >&2
    exit 2
fi

file="$1"
shift

if [ ! -f "$file" ]; then
    echo "$file: bench artifact missing" >&2
    exit 1
fi

if grep -E '"(puts_completed|gets_answered)": 0(\.00)?,?$' "$file"; then
    echo "$file: a sweep row recorded zero completed operations" >&2
    exit 1
fi

# Every row must have finished its full workload: the submitted and completed
# counters are compared row by row (grep preserves row order on both sides).
check_all_completed() {
    local submitted_field="$1" completed_field="$2"
    local submitted completed
    submitted=$(grep -oE "\"${submitted_field}\": [0-9]+" "$file" | awk '{print $2}')
    completed=$(grep -oE "\"${completed_field}\": [0-9]+" "$file" | awk '{print $2}')
    if [ -z "$submitted" ]; then
        echo "$file: no ${submitted_field} column found" >&2
        exit 1
    fi
    if [ "$submitted" != "$completed" ]; then
        echo "$file: ${completed_field} does not equal ${submitted_field} on every row" >&2
        exit 1
    fi
}
check_all_completed puts_submitted puts_completed
check_all_completed gets_submitted gets_answered

# The latency distribution must include the p99.9 tail, not just p50/p99.
for column in put_latency_p999_us get_latency_p999_us; do
    if ! grep -q "\"${column}\":" "$file"; then
        echo "$file: ${column} column missing from sweep rows" >&2
        exit 1
    fi
done

for workers in "$@"; do
    if ! grep -Eq "\"workers\": ${workers},?$" "$file"; then
        echo "$file: sweep row for ${workers} workers missing" >&2
        exit 1
    fi
done

echo "$file: all rows present (workers: $*), every row completed all its ops, p99.9 recorded"
