#!/usr/bin/env bash
# Guard a bench sweep artifact: every expected worker-count row must be
# present and no row may have recorded zero completed operations.
#
# Usage: ci/check_bench.sh <bench.json> <worker-count>...
#
# Shared by the async and socket bench smoke jobs. The bench binaries emit
# `workers` as a JSON integer (`"workers": 4`) precisely so this check never
# depends on float formatting; the zero-op pattern still tolerates the older
# two-decimal rendering of the count metrics.
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <bench.json> <worker-count>..." >&2
    exit 2
fi

file="$1"
shift

if [ ! -f "$file" ]; then
    echo "$file: bench artifact missing" >&2
    exit 1
fi

if grep -E '"(puts_completed|gets_answered)": 0(\.00)?,?$' "$file"; then
    echo "$file: a sweep row recorded zero completed operations" >&2
    exit 1
fi

for workers in "$@"; do
    if ! grep -Eq "\"workers\": ${workers},?$" "$file"; then
        echo "$file: sweep row for ${workers} workers missing" >&2
        exit 1
    fi
done

echo "$file: all rows present (workers: $*), every row completed operations"
