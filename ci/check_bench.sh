#!/usr/bin/env bash
# Guard a bench sweep artifact: every expected sweep row must be present,
# every row must have completed every operation it submitted, and the
# schema-specific throughput/latency columns must be recorded.
#
# Usage: ci/check_bench.sh <bench.json> <row-size>...
#
# Two artifact schemas are understood, detected from the artifact itself:
#
#   * worker sweeps (BENCH_async.json, BENCH_socket.json): rows are keyed
#     by `"workers": N` and must record p99.9 latency tails;
#   * simulator sweeps (BENCH_sim.json): rows are keyed by `"nodes": N`
#     and must record a positive `events_per_s` throughput figure.
#
# Shared by the async, socket and sim bench smoke jobs. The bench binaries
# emit count metrics as JSON integers (`"workers": 4`, `"puts_completed":
# 150`) precisely so these checks never depend on float formatting.
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <bench.json> <row-size>..." >&2
    exit 2
fi

file="$1"
shift

if [ ! -f "$file" ]; then
    echo "$file: bench artifact missing" >&2
    exit 1
fi

# Schema detection: simulator sweeps carry an events-per-second throughput
# column that worker sweeps do not have.
if grep -q '"events_per_s":' "$file"; then
    schema=sim
    row_key=nodes
else
    schema=workers
    row_key=workers
fi

if grep -E '"(puts_completed|gets_answered)": 0(\.00)?,?$' "$file"; then
    echo "$file: a sweep row recorded zero completed operations" >&2
    exit 1
fi

# Every row must have finished its full workload: the submitted and completed
# counters are compared row by row (grep preserves row order on both sides).
check_all_completed() {
    local submitted_field="$1" completed_field="$2"
    local submitted completed
    submitted=$(grep -oE "\"${submitted_field}\": [0-9]+" "$file" | awk '{print $2}')
    completed=$(grep -oE "\"${completed_field}\": [0-9]+" "$file" | awk '{print $2}')
    if [ -z "$submitted" ]; then
        echo "$file: no ${submitted_field} column found" >&2
        exit 1
    fi
    if [ "$submitted" != "$completed" ]; then
        echo "$file: ${completed_field} does not equal ${submitted_field} on every row" >&2
        exit 1
    fi
}
check_all_completed puts_submitted puts_completed
check_all_completed gets_submitted gets_answered

if [ "$schema" = sim ]; then
    # Count columns must be plain integers (no scientific notation, no
    # floats) so diffs of the tracked artifact stay meaningful.
    for column in events_dispatched timer_fires messages_delivered alive_end; do
        if ! grep -Eq "\"${column}\": [0-9]+,?$" "$file"; then
            echo "$file: ${column} missing or not an integer" >&2
            exit 1
        fi
    done
    # Throughput must be present and positive on every row: an events_per_s
    # of zero means the event loop never ran.
    if grep -E '"events_per_s": (0(\.0+)?|-[0-9.]+),?$' "$file"; then
        echo "$file: a sweep row recorded non-positive events_per_s" >&2
        exit 1
    fi
    if ! grep -q '"events_per_s":' "$file"; then
        echo "$file: events_per_s column missing from sweep rows" >&2
        exit 1
    fi
else
    # The latency distribution must include the p99.9 tail, not just p50/p99.
    for column in put_latency_p999_us get_latency_p999_us; do
        if ! grep -q "\"${column}\":" "$file"; then
            echo "$file: ${column} column missing from sweep rows" >&2
            exit 1
        fi
    done
fi

for size in "$@"; do
    if ! grep -Eq "\"${row_key}\": ${size},?$" "$file"; then
        echo "$file: sweep row for ${size} ${row_key} missing" >&2
        exit 1
    fi
done

echo "$file: all rows present (${row_key}: $*), every row completed all its ops, ${schema} columns recorded"
