//! Churn tolerance: what happens to stored objects when a third of the
//! cluster crashes — with and without the anti-entropy repair extension.
//!
//! The paper (§VII) leaves replication maintenance under churn as an open
//! challenge; this example demonstrates the anti-entropy mechanism this
//! repository adds for it.
//!
//! Run with `cargo run -p dataflasks --example churn_tolerance --release`.

use dataflasks::prelude::*;

fn main() {
    for anti_entropy in [false, true] {
        let (availability, mean_replication) = run(anti_entropy);
        println!(
            "anti-entropy {:8}: availability {:.1}%, mean replication {:.1}",
            if anti_entropy { "enabled" } else { "disabled" },
            availability * 100.0,
            mean_replication
        );
    }
    println!("with repair enabled the surviving slice members re-replicate objects among");
    println!("themselves, so availability stays high even after losing a third of the nodes.");
}

fn run(anti_entropy: bool) -> (f64, f64) {
    let nodes = 120;
    let slices = 4;
    let mut config = NodeConfig::for_system_size(nodes, slices);
    if !anti_entropy {
        config = config.without_anti_entropy();
    }
    let mut sim = Simulation::new(SimConfig::default());
    sim.spawn_cluster(nodes, config);
    sim.run_for(Duration::from_secs(60));

    // Load 80 objects.
    let client = sim.add_client();
    let mut generator = WorkloadGenerator::new(WorkloadSpec::write_only(80, 0), 3);
    let mut at = sim.now();
    let mut keys = Vec::new();
    for op in generator.load_phase() {
        keys.push(op.key);
        at += Duration::from_millis(50);
        sim.schedule_put(
            at,
            client,
            op.key,
            op.version.unwrap_or(Version::new(1)),
            op.value,
        );
    }
    sim.run_until(at + Duration::from_secs(20));

    // Crash a third of the cluster over one minute, then give the system two
    // minutes to stabilise (and, if enabled, repair).
    let start = sim.now();
    sim.schedule_churn(start, start + Duration::from_secs(60), nodes / 3, 0);
    sim.run_until(start + Duration::from_secs(180));

    let available = keys
        .iter()
        .filter(|&&k| sim.replication_factor(k) > 0)
        .count();
    let mean_replication: f64 = keys
        .iter()
        .map(|&k| sim.replication_factor(k) as f64)
        .sum::<f64>()
        / keys.len() as f64;
    (available as f64 / keys.len() as f64, mean_replication)
}
