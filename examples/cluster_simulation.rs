//! A larger simulated deployment: hundreds of nodes, a write-heavy workload,
//! and a look at the per-node message cost — the scenario behind the paper's
//! scalability evaluation.
//!
//! Run with `cargo run -p dataflasks --example cluster_simulation --release`.

use dataflasks::prelude::*;

fn main() {
    let nodes = 300;
    let slices = 10;
    println!("simulating {nodes} nodes in {slices} slices");

    let mut sim = Simulation::new(SimConfig::default());
    let config = NodeConfig::for_system_size(nodes, slices);
    sim.spawn_cluster(nodes, config);
    sim.run_for(Duration::from_secs(60));

    let populations = sim.slice_populations();
    println!("slice populations after convergence:");
    let mut sorted: Vec<_> = populations.iter().collect();
    sorted.sort();
    for (slice, count) in sorted {
        println!("  {slice}: {count} nodes");
    }

    // Drive a write-only YCSB load sized to the system capacity.
    let client = sim.add_client();
    let spec = WorkloadSpec::write_only(400, 0);
    let mut generator = WorkloadGenerator::new(spec, 1);
    let mut at = sim.now();
    let mut keys = Vec::new();
    for op in generator.load_phase() {
        keys.push(op.key);
        at += Duration::from_millis(40);
        sim.schedule_put(
            at,
            client,
            op.key,
            op.version.unwrap_or(Version::new(1)),
            op.value,
        );
    }
    sim.run_until(at + Duration::from_secs(30));

    let report = sim.cluster_report();
    let stats = sim.client(client).expect("client exists").stats();
    let mean_replication: f64 = keys
        .iter()
        .map(|&k| sim.replication_factor(k) as f64)
        .sum::<f64>()
        / keys.len() as f64;
    println!("write workload finished:");
    println!(
        "  operations acked     : {}/{}",
        stats.puts_acked, stats.puts_issued
    );
    println!(
        "  mean replication     : {mean_replication:.1} replicas per object (slice size ≈ {})",
        nodes / slices as usize
    );
    println!(
        "  request msgs per node: {:.1}",
        report.request_messages_per_node.mean
    );
    println!(
        "  total msgs per node  : {:.1} (including membership, slicing and repair gossip)",
        report.total_messages_per_node.mean
    );
    println!(
        "  network messages     : {} delivered, {} dropped",
        sim.messages_delivered(),
        sim.messages_dropped()
    );
}
