//! Running the same DataFlasks node code outside the simulator: one
//! operating-system thread per node, channels as the transport, blocking
//! client calls.
//!
//! Run with `cargo run -p dataflasks --example threaded_cluster`.

use dataflasks::prelude::*;
use dataflasks::types::PssConfig;

fn main() {
    // Speed the gossip up so the demo converges in a fraction of a second.
    let mut config = NodeConfig::for_system_size(6, 2);
    config.pss = PssConfig {
        shuffle_period: Duration::from_millis(25),
        ..config.pss
    };
    config.slicing.gossip_period = Duration::from_millis(25);
    config.replication.anti_entropy_period = Duration::from_millis(100);

    let cluster = ThreadedCluster::start(6, config, 2024);
    println!("started {} node threads", cluster.node_ids().len());
    std::thread::sleep(std::time::Duration::from_millis(500));

    for i in 0..5u64 {
        let key = Key::from_user_key(&format!("item-{i}"));
        cluster
            .put(
                key,
                Version::new(1),
                Value::from_bytes(format!("value-{i}").as_bytes()),
                Duration::from_secs(5),
            )
            .expect("put acknowledged");
    }
    println!("stored 5 objects");

    for i in 0..5u64 {
        let key = Key::from_user_key(&format!("item-{i}"));
        let value = cluster
            .get(key, None, Duration::from_secs(5))
            .expect("get completed")
            .expect("object found");
        println!(
            "  item-{i} -> {}",
            String::from_utf8_lossy(value.value.as_slice())
        );
    }

    let nodes = cluster.shutdown();
    println!("shut down; per-node summary:");
    for node in &nodes {
        println!(
            "  {}: slice {:?}, {} keys stored, {} messages exchanged",
            node.id(),
            node.slice().map(|s| s.index()),
            dataflasks::store::DataStore::len(node.store()),
            node.stats().total_messages()
        );
    }
}
