//! Running YCSB-style workloads (A, B, C) against a simulated DataFlasks
//! cluster, reporting completion counts and client-side latency.
//!
//! Run with `cargo run -p dataflasks --example ycsb_benchmark --release`.

use dataflasks::prelude::*;

fn main() {
    let nodes = 150;
    let slices = 5;
    let records = 200;
    let operations = 400;
    println!("YCSB-style workloads over {nodes} nodes / {slices} slices, {records} records, {operations} ops");
    println!("workload,reads,updates,acked_puts,get_hits,get_misses,timeouts,mean_latency_ms");
    for (label, spec) in [
        (
            "A (50/50 read-update)",
            WorkloadSpec::workload_a(records, operations),
        ),
        (
            "B (95/5 read-update)",
            WorkloadSpec::workload_b(records, operations),
        ),
        (
            "C (read only)",
            WorkloadSpec::workload_c(records, operations),
        ),
    ] {
        let line = run_workload(nodes, slices, spec);
        println!("{label},{line}");
    }
}

fn run_workload(nodes: usize, slices: u32, spec: WorkloadSpec) -> String {
    let config = NodeConfig::for_system_size(nodes, slices);
    let mut sim = Simulation::new(SimConfig::default());
    sim.spawn_cluster(nodes, config);
    sim.run_for(Duration::from_secs(60));

    let client = sim.add_client();
    let mut generator = WorkloadGenerator::new(spec, 0x1C5B);
    let mut at = sim.now();
    // Load phase: insert every record.
    for op in generator.load_phase() {
        at += Duration::from_millis(30);
        sim.schedule_put(
            at,
            client,
            op.key,
            op.version.unwrap_or(Version::new(1)),
            op.value,
        );
    }
    // Transaction phase: the configured read/update mix.
    let mut reads = 0u64;
    let mut updates = 0u64;
    for op in generator.transaction_phase() {
        at += Duration::from_millis(30);
        match op.kind {
            OperationKind::Read => {
                reads += 1;
                sim.schedule_get(at, client, op.key, None);
            }
            OperationKind::Update | OperationKind::Insert => {
                updates += 1;
                sim.schedule_put(
                    at,
                    client,
                    op.key,
                    op.version.unwrap_or(Version::new(1)),
                    op.value,
                );
            }
        }
    }
    sim.run_until(at + Duration::from_secs(30));

    let stats = sim.client(client).expect("client exists").stats();
    format!(
        "{reads},{updates},{},{},{},{},{:.0}",
        stats.puts_acked,
        stats.gets_hit,
        stats.gets_missed,
        stats.timeouts,
        stats.mean_latency_ms()
    )
}
