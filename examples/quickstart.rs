//! Quickstart: simulate a small DataFlasks cluster, store an object and read
//! it back.
//!
//! Run with `cargo run -p dataflasks --example quickstart`.

use dataflasks::prelude::*;

fn main() {
    // 1. Build a simulated cluster of 32 nodes divided into 4 slices. The
    //    simulator runs the real protocol code over a virtual network.
    let mut sim = Simulation::new(SimConfig::default());
    let config = NodeConfig::for_system_size(32, 4);
    sim.spawn_cluster(32, config);

    // 2. Let the epidemic substrate converge: the Peer Sampling Service fills
    //    the partial views and the slicing protocol assigns every node to a
    //    slice based on its storage capacity.
    sim.run_for(Duration::from_secs(45));
    println!(
        "slice populations after warm-up: {:?}",
        sim.slice_populations()
    );

    // 3. Store an object through the client library. The put is disseminated
    //    epidemically until it reaches the responsible slice, whose members
    //    all store it.
    let client = sim.add_client();
    let key = Key::from_user_key("greeting");
    sim.submit_put(
        client,
        key,
        Version::new(1),
        Value::from_bytes(b"hello, epidemic world"),
    );
    sim.run_for(Duration::from_secs(10));
    println!(
        "object replicated on {} nodes (slice-wide replication)",
        sim.replication_factor(key)
    );

    // 4. Read it back: the get reaches the responsible slice and every
    //    replica that holds the object answers; the client keeps the first
    //    reply.
    sim.submit_get(client, key, Some(Version::new(1)));
    sim.run_for(Duration::from_secs(10));
    let stats = sim.client(client).expect("client exists").stats();
    println!(
        "client stats: {} put acked, {} get hit, mean latency {:.0} ms",
        stats.puts_acked,
        stats.gets_hit,
        stats.mean_latency_ms()
    );

    let report = sim.cluster_report();
    println!(
        "per-node request messages: mean {:.1} (min {:.0}, max {:.0})",
        report.request_messages_per_node.mean,
        report.request_messages_per_node.min,
        report.request_messages_per_node.max
    );
    assert_eq!(stats.puts_acked, 1, "the put must be acknowledged");
    assert_eq!(stats.gets_hit, 1, "the get must find the object");
    println!("quickstart finished successfully");
}
